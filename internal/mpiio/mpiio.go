// Package mpiio implements the collective I/O layer the paper's reads
// go through: ROMIO-style two-phase collective reads with I/O
// aggregators, data sieving, and tunable hints (the paper's §V tuning
// sets the collective buffer size to the netCDF record size).
//
// # Two-phase model
//
// The aggregate byte range of all requests is divided into contiguous
// file domains, one per aggregator. Each aggregator walks its domain in
// windows of CBBufferSize and reads, in one contiguous access, every
// window that contains at least one requested byte (clamped to the
// first/last requested byte of the whole domain). It then scatters the
// requested fragments to their ranks. "Read a large contiguous region,
// then distribute the small noncontiguous regions of interest" is
// exactly the behaviour Thakur et al. describe for ROMIO and the paper
// observes on BG/P:
//
//   - untuned netCDF record files (windows much larger than a record)
//     read nearly the whole file — Fig 9 left;
//   - tuning the window to the record size skips the windows holding
//     other variables' records and reads about twice the useful bytes
//     (each record straddles two windows) — Fig 9 center;
//   - contiguous layouts (raw, HDF5-like, CDF-5 fixed variables) are
//     read at density ~1 — Fig 9 right.
//
// Planning (which physical accesses happen) is separated from execution
// so the machine model can plan at 32K-core scale without moving bytes,
// while real mode executes the identical plan over the comm runtime.
package mpiio

import (
	"fmt"
	"io"
	"math"
	"sort"

	"bgpvr/internal/comm"
	"bgpvr/internal/critpath"
	"bgpvr/internal/grid"
	"bgpvr/internal/iotrace"
	"bgpvr/internal/obs"
	"bgpvr/internal/trace"
	"bgpvr/internal/vfile"
)

// Live observability for the two-phase read: stagePhase ticks once per
// collective-buffer window an aggregator walks (sessions from the
// concurrent per-rank aggregators of one collective overlap and
// accumulate), and the counters mirror the physical-access trace
// counters into /metrics.
var (
	stagePhase     = obs.GetPhase("mpiio-stage")
	cStageAccesses = obs.Default.NewCounter("bgpvr_mpiio_accesses_total",
		"Physical file accesses issued by I/O aggregators.")
	cStageBytes = obs.Default.NewCounter("bgpvr_mpiio_staged_bytes_total",
		"Bytes physically read into collective buffers.")
)

// DefaultCBBufferSize is the untuned collective buffer size. ROMIO's
// stock default is 4 MB; BG/P deployments shipped larger collective
// buffers, and 16 MB reproduces the ~15 MB accesses of Fig 9 (left).
const DefaultCBBufferSize = 16 << 20

// Hints are the MPI-IO tuning knobs used by the paper.
type Hints struct {
	// CBBufferSize is the collective buffer (window) size in bytes.
	// Zero means DefaultCBBufferSize.
	CBBufferSize int64
	// CBNodes is the number of I/O aggregators. Zero means one.
	CBNodes int
}

func (h Hints) window() int64 {
	if h.CBBufferSize <= 0 {
		return DefaultCBBufferSize
	}
	return h.CBBufferSize
}

func (h Hints) aggregators(p int) int {
	a := h.CBNodes
	if a <= 0 {
		a = 1
	}
	if a > p {
		a = p
	}
	return a
}

// AggRank returns the world rank acting as aggregator i of a, spreading
// aggregators evenly across the rank space (ROMIO spreads them across
// nodes the same way).
func AggRank(i, a, p int) int { return i * p / a }

// Plan is the physical-access schedule of one collective read.
type Plan struct {
	Span     grid.Run   // [first, last) requested byte over all ranks
	Domains  []grid.Run // per-aggregator file domain
	Accesses []grid.Run // physical reads, in issue order across aggregators
	// PerAggAccesses counts the accesses each aggregator issues.
	PerAggAccesses []int
	UsefulBytes    int64
}

// Stats summarizes the plan with the paper's data-density metric.
func (p *Plan) Stats() iotrace.Stats {
	st := iotrace.Analyze(p.Accesses, nil)
	st.UsefulBytes = p.UsefulBytes
	return st
}

// BuildPlan computes the two-phase physical accesses for the union of
// all requested runs. union must be sorted by offset and non-overlapping
// (grid.CoalesceRuns output); it is what every format's VarRuns already
// produces for a whole-variable collective read.
func BuildPlan(union []grid.Run, h Hints) *Plan {
	p := &Plan{UsefulBytes: grid.TotalBytes(union)}
	if len(union) == 0 {
		return p
	}
	st := union[0].Offset
	end := union[len(union)-1].End()
	p.Span = grid.Run{Offset: st, Length: end - st}

	a := h.CBNodes
	if a < 1 {
		a = 1
	}
	w := h.window()
	domLen := (end - st + int64(a) - 1) / int64(a)
	if domLen < 1 {
		domLen = 1
	}
	ri := 0 // index into union
	for d := 0; d < a; d++ {
		dlo := st + int64(d)*domLen
		dhi := dlo + domLen
		if dhi > end {
			dhi = end
		}
		if dlo >= dhi {
			break
		}
		p.Domains = append(p.Domains, grid.Run{Offset: dlo, Length: dhi - dlo})
		// Advance to the first run intersecting this domain.
		for ri < len(union) && union[ri].End() <= dlo {
			ri++
		}
		nAcc := 0
		j := ri
		// First/last needed bytes within the domain clamp the window reads.
		firstNeeded := int64(-1)
		lastNeeded := int64(-1)
		for k := j; k < len(union) && union[k].Offset < dhi; k++ {
			lo := max64(union[k].Offset, dlo)
			hi := min64(union[k].End(), dhi)
			if lo < hi {
				if firstNeeded < 0 {
					firstNeeded = lo
				}
				lastNeeded = hi
			}
		}
		if firstNeeded < 0 {
			continue
		}
		for wlo := dlo; wlo < dhi; wlo += w {
			whi := min64(wlo+w, dhi)
			// Does any run intersect [wlo, whi)?
			for j < len(union) && union[j].End() <= wlo {
				j++
			}
			if j >= len(union) || union[j].Offset >= whi {
				continue // empty window: skipped
			}
			rlo := max64(wlo, firstNeeded)
			rhi := min64(whi, lastNeeded)
			if rlo >= rhi {
				continue
			}
			p.Accesses = append(p.Accesses, grid.Run{Offset: rlo, Length: rhi - rlo})
			nAcc++
		}
		p.PerAggAccesses = append(p.PerAggAccesses, nAcc)
	}
	return p
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// CollectiveRead performs a two-phase collective read over the comm
// runtime: every rank passes its own sorted, non-overlapping byte runs
// and receives the concatenated bytes of those runs. All ranks must call
// it together. The physical reads (and only those) hit f, so passing a
// vfile.Traced yields the Fig 9/10 access logs.
func CollectiveRead(c *comm.Comm, f vfile.File, myRuns []grid.Run, h Hints) ([]byte, error) {
	tr := c.Trace()
	sp := tr.Begin(trace.PhaseIO, "collective-read")
	defer sp.End()
	p := c.Size()
	a := h.aggregators(p)
	w := h.window()

	// Global span via allreduce.
	lo, hi := math.Inf(1), math.Inf(-1)
	if len(myRuns) > 0 {
		lo = float64(myRuns[0].Offset)
		hi = float64(myRuns[len(myRuns)-1].End())
	}
	mn := c.Allreduce([]float64{lo}, comm.OpMin)[0]
	mx := c.Allreduce([]float64{hi}, comm.OpMax)[0]
	if math.IsInf(mn, 1) {
		return nil, nil // nobody wants anything
	}
	st, end := int64(mn), int64(mx)
	domLen := (end - st + int64(a) - 1) / int64(a)
	if domLen < 1 {
		domLen = 1
	}
	domOf := func(off int64) int {
		d := int((off - st) / domLen)
		if d >= a {
			d = a - 1
		}
		return d
	}
	domBounds := func(d int) (int64, int64) {
		dlo := st + int64(d)*domLen
		dhi := min64(dlo+domLen, end)
		return dlo, dhi
	}

	// Split my runs into per-domain fragments (offset order preserved).
	frags := make([][]grid.Run, a)
	for _, r := range myRuns {
		off := r.Offset
		for off < r.End() {
			d := domOf(off)
			_, dhi := domBounds(d)
			l := min64(r.End(), dhi) - off
			frags[d] = append(frags[d], grid.Run{Offset: off, Length: l})
			off += l
		}
	}

	// Request exchange: encode fragments as int64 pairs to aggregators.
	reqSp := tr.Begin(trace.PhaseIO, "request-exchange")
	reqBufs := make([][]byte, p)
	for d := 0; d < a; d++ {
		if len(frags[d]) == 0 {
			continue
		}
		enc := make([]int64, 0, 2*len(frags[d]))
		for _, fr := range frags[d] {
			enc = append(enc, fr.Offset, fr.Length)
		}
		reqBufs[AggRank(d, a, p)] = comm.I64sToBytes(enc)
	}
	c.SetDepKind(critpath.DepAggregator)
	reqs := c.Alltoallv(reqBufs)
	c.SetDepKind(critpath.DepAuto)
	reqSp.End()

	// Aggregator work: decode requests, read windows, build replies.
	aggSp := tr.Begin(trace.PhaseIO, "aggregator-read")
	replies := make([][]byte, p)
	myAggIdx := -1
	for d := 0; d < a; d++ {
		if AggRank(d, a, p) == c.Rank() {
			myAggIdx = d
			break
		}
	}
	if myAggIdx >= 0 {
		type srcReq struct {
			src   int
			runs  []grid.Run
			reply []byte
		}
		var srcs []srcReq
		var needed []grid.Run
		for src := 0; src < p; src++ {
			enc := comm.BytesToI64s(reqs[src])
			if len(enc) == 0 {
				continue
			}
			runs := make([]grid.Run, len(enc)/2)
			var total int64
			for i := range runs {
				runs[i] = grid.Run{Offset: enc[2*i], Length: enc[2*i+1]}
				total += runs[i].Length
			}
			srcs = append(srcs, srcReq{src: src, runs: runs, reply: make([]byte, 0, total)})
			needed = append(needed, runs...)
		}
		if len(needed) > 0 {
			sort.Slice(needed, func(i, j int) bool { return needed[i].Offset < needed[j].Offset })
			needed = grid.CoalesceRuns(needed)
			dlo, dhi := domBounds(myAggIdx)
			firstNeeded := needed[0].Offset
			lastNeeded := needed[len(needed)-1].End()
			cursor := make([]int, len(srcs)) // per-src next fragment
			buf := make([]byte, w)
			ni := 0
			stagePhase.Start((dhi - dlo + w - 1) / w)
			defer stagePhase.End()
			for wlo := dlo; wlo < dhi; wlo += w {
				stagePhase.Add(1)
				whi := min64(wlo+w, dhi)
				for ni < len(needed) && needed[ni].End() <= wlo {
					ni++
				}
				if ni >= len(needed) || needed[ni].Offset >= whi {
					continue
				}
				rlo := max64(wlo, firstNeeded)
				rhi := min64(whi, lastNeeded)
				if rlo >= rhi {
					continue
				}
				b := buf[:rhi-rlo]
				if _, err := f.ReadAt(b, rlo); err != nil && err != io.EOF {
					return nil, fmt.Errorf("mpiio: aggregator read at %d: %w", rlo, err)
				}
				tr.Add(trace.CounterAccesses, 1)
				tr.Add(trace.CounterBytesRead, rhi-rlo)
				cStageAccesses.Inc()
				cStageBytes.Add(rhi - rlo)
				c.Net().ObserveAccess(rhi - rlo)
				// Scatter the window's fragments to each source's reply.
				for si := range srcs {
					for cursor[si] < len(srcs[si].runs) {
						fr := srcs[si].runs[cursor[si]]
						if fr.Offset >= whi {
							break
						}
						flo := max64(fr.Offset, wlo)
						fhi := min64(fr.End(), whi)
						if flo < fhi {
							srcs[si].reply = append(srcs[si].reply, b[flo-rlo:fhi-rlo]...)
						}
						if fr.End() <= whi {
							cursor[si]++
						} else {
							break // rest of the fragment is in a later window
						}
					}
				}
			}
			for _, s := range srcs {
				replies[s.src] = s.reply
			}
		}
	}
	aggSp.End()
	scatSp := tr.Begin(trace.PhaseIO, "scatter")
	c.SetDepKind(critpath.DepAggregator)
	got := c.Alltoallv(replies)
	c.SetDepKind(critpath.DepAuto)
	scatSp.End()

	// Reassemble: fragments per aggregator arrive in offset order; walk
	// my runs, consuming from the right aggregator's stream.
	reasmSp := tr.Begin(trace.PhaseIO, "reassemble")
	defer reasmSp.End()
	var total int64
	for _, r := range myRuns {
		total += r.Length
	}
	out := make([]byte, 0, total)
	pos := make([]int64, p) // byte cursor per aggregator rank
	for _, r := range myRuns {
		off := r.Offset
		for off < r.End() {
			d := domOf(off)
			ar := AggRank(d, a, p)
			_, dhi := domBounds(d)
			l := min64(r.End(), dhi) - off
			seg := got[ar]
			if pos[ar]+l > int64(len(seg)) {
				return nil, fmt.Errorf("mpiio: rank %d short reply from aggregator %d: have %d, need %d",
					c.Rank(), ar, len(seg), pos[ar]+l)
			}
			out = append(out, seg[pos[ar]:pos[ar]+l]...)
			pos[ar] += l
			off += l
		}
	}
	return out, nil
}

// IndependentRead reads the given sorted runs without collective
// buffering, applying data sieving: consecutive runs separated by holes
// of at most sieveHole bytes are fetched in one contiguous access (the
// hole bytes are read and discarded). sieveHole = 0 reads each run
// exactly. The concatenated run bytes are returned.
func IndependentRead(f vfile.File, runs []grid.Run, sieveHole int64) ([]byte, error) {
	var total int64
	for _, r := range runs {
		total += r.Length
	}
	out := make([]byte, 0, total)
	i := 0
	for i < len(runs) {
		j := i
		lo := runs[i].Offset
		hi := runs[i].End()
		for j+1 < len(runs) && runs[j+1].Offset-hi <= sieveHole {
			j++
			if e := runs[j].End(); e > hi {
				hi = e
			}
		}
		buf := make([]byte, hi-lo)
		if _, err := f.ReadAt(buf, lo); err != nil && err != io.EOF {
			return nil, fmt.Errorf("mpiio: independent read at %d: %w", lo, err)
		}
		for k := i; k <= j; k++ {
			out = append(out, buf[runs[k].Offset-lo:runs[k].End()-lo]...)
		}
		i = j + 1
	}
	return out, nil
}
