package mpiio

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bgpvr/internal/comm"
	"bgpvr/internal/grid"
	"bgpvr/internal/iotrace"
	"bgpvr/internal/vfile"
)

// periodicUnion builds a netCDF-record-like union: nseg segments of
// segLen bytes, period bytes apart, starting at base.
func periodicUnion(base, segLen, period int64, nseg int) []grid.Run {
	var u []grid.Run
	for i := 0; i < nseg; i++ {
		u = append(u, grid.Run{Offset: base + int64(i)*period, Length: segLen})
	}
	return u
}

func TestBuildPlanContiguous(t *testing.T) {
	union := []grid.Run{{Offset: 100, Length: 10 << 20}}
	p := BuildPlan(union, Hints{CBBufferSize: 1 << 20, CBNodes: 4})
	st := p.Stats()
	if st.UsefulBytes != 10<<20 {
		t.Fatalf("useful = %d", st.UsefulBytes)
	}
	if d := st.Density(); d < 0.999 {
		t.Errorf("contiguous density = %v, want ~1", d)
	}
	if len(p.Domains) != 4 {
		t.Errorf("domains = %d", len(p.Domains))
	}
	// Physical accesses cover exactly the span.
	sorted := append([]grid.Run(nil), p.Accesses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	cov := grid.CoalesceRuns(sorted)
	if len(cov) != 1 || cov[0] != union[0] {
		t.Errorf("coverage = %v", cov)
	}
}

func TestBuildPlanEmpty(t *testing.T) {
	p := BuildPlan(nil, Hints{})
	if len(p.Accesses) != 0 || p.UsefulBytes != 0 {
		t.Errorf("empty plan = %+v", p)
	}
	if p.Stats().Density() != 0 {
		t.Error("empty density should be 0")
	}
}

// The paper's Fig 9/10 mechanism: with one variable of five needed,
// untuned windows read most of the file span; windows tuned to the
// record size read about twice the useful bytes; the density ordering is
// untuned < tuned < contiguous.
func TestBuildPlanRecordInterleavingDensities(t *testing.T) {
	seg := int64(1120 * 1120 * 4 / 100) // scaled-down record (~50 KB)
	period := 5 * seg
	nseg := 200
	union := periodicUnion(337, seg, period, nseg) // odd base: header phase

	untuned := BuildPlan(union, Hints{CBBufferSize: 3*seg + seg/3, CBNodes: 8}).Stats()
	tuned := BuildPlan(union, Hints{CBBufferSize: seg, CBNodes: 8}).Stats()
	contig := BuildPlan([]grid.Run{{Offset: 337, Length: seg * int64(nseg)}},
		Hints{CBBufferSize: 3 * seg, CBNodes: 8}).Stats()

	if !(untuned.Density() < tuned.Density() && tuned.Density() < contig.Density()) {
		t.Fatalf("density ordering violated: untuned=%.3f tuned=%.3f contig=%.3f",
			untuned.Density(), tuned.Density(), contig.Density())
	}
	// Untuned reads the bulk of the span (density near 1/5 for 1-of-5
	// interleaving); tuned lands near 1/2.
	if untuned.Density() > 0.35 {
		t.Errorf("untuned density %.3f too good", untuned.Density())
	}
	if tuned.Density() < 0.4 || tuned.Density() > 0.75 {
		t.Errorf("tuned density %.3f outside [0.4, 0.75]", tuned.Density())
	}
	if contig.Density() < 0.99 {
		t.Errorf("contiguous density %.3f", contig.Density())
	}
	// Tuning also reduces the physical volume by more than 2x.
	if tuned.PhysicalBytes*2 > untuned.PhysicalBytes {
		t.Errorf("tuning saved too little: %d vs %d", tuned.PhysicalBytes, untuned.PhysicalBytes)
	}
}

func TestBuildPlanWindowAccessesBounded(t *testing.T) {
	union := periodicUnion(0, 1000, 5000, 50)
	h := Hints{CBBufferSize: 1000, CBNodes: 4}
	p := BuildPlan(union, h)
	for _, a := range p.Accesses {
		if a.Length > h.CBBufferSize {
			t.Errorf("access %v exceeds window", a)
		}
		if a.Length <= 0 {
			t.Errorf("non-positive access %v", a)
		}
	}
	if len(p.PerAggAccesses) != len(p.Domains) {
		t.Errorf("per-agg accounting mismatch")
	}
	sum := 0
	for _, n := range p.PerAggAccesses {
		sum += n
	}
	if sum != len(p.Accesses) {
		t.Errorf("per-agg sum %d != %d", sum, len(p.Accesses))
	}
}

func TestAggRankSpread(t *testing.T) {
	p := 64
	a := 8
	seen := map[int]bool{}
	for i := 0; i < a; i++ {
		r := AggRank(i, a, p)
		if r < 0 || r >= p || seen[r] {
			t.Fatalf("aggregator ranks not distinct/valid: %d", r)
		}
		seen[r] = true
	}
	if AggRank(0, a, p) != 0 || AggRank(4, 8, 64) != 32 {
		t.Error("spread wrong")
	}
}

// randomFile builds a deterministic pseudo-random data file.
func randomFile(n int64, seed int64) *vfile.MemFile {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return &vfile.MemFile{Data: b}
}

// directBytes extracts the concatenated run bytes straight from the file.
func directBytes(f *vfile.MemFile, runs []grid.Run) []byte {
	var out []byte
	for _, r := range runs {
		out = append(out, f.Data[r.Offset:r.End()]...)
	}
	return out
}

func TestCollectiveReadMatchesDirect(t *testing.T) {
	file := randomFile(1<<16, 1)
	for _, p := range []int{1, 2, 5, 8} {
		for _, hints := range []Hints{
			{CBBufferSize: 512, CBNodes: 1},
			{CBBufferSize: 1 << 12, CBNodes: 3},
			{CBBufferSize: 100, CBNodes: 8},
		} {
			rng := rand.New(rand.NewSource(int64(p)*100 + hints.CBBufferSize))
			reqs := make([][]grid.Run, p)
			for r := range reqs {
				// Random sorted non-overlapping runs.
				off := int64(rng.Intn(2000))
				for off < int64(len(file.Data))-10 && len(reqs[r]) < 20 {
					l := int64(rng.Intn(500) + 1)
					if off+l > int64(len(file.Data)) {
						l = int64(len(file.Data)) - off
					}
					reqs[r] = append(reqs[r], grid.Run{Offset: off, Length: l})
					off += l + int64(rng.Intn(3000))
				}
			}
			results := make([][]byte, p)
			w := comm.NewWorld(p)
			err := w.Run(func(c *comm.Comm) error {
				got, err := CollectiveRead(c, file, reqs[c.Rank()], hints)
				results[c.Rank()] = got
				return err
			})
			if err != nil {
				t.Fatalf("p=%d hints=%+v: %v", p, hints, err)
			}
			for r := range reqs {
				want := directBytes(file, reqs[r])
				if !bytes.Equal(results[r], want) {
					t.Fatalf("p=%d hints=%+v rank %d: got %d bytes, want %d (content mismatch=%v)",
						p, hints, r, len(results[r]), len(want), !bytes.Equal(results[r], want))
				}
			}
		}
	}
}

func TestCollectiveReadOverlappingRequests(t *testing.T) {
	// Two ranks request overlapping ranges; both must get full copies.
	file := randomFile(4096, 2)
	reqs := [][]grid.Run{
		{{Offset: 0, Length: 2048}},
		{{Offset: 1024, Length: 2048}},
		{{Offset: 500, Length: 100}, {Offset: 3000, Length: 10}},
	}
	results := make([][]byte, 3)
	w := comm.NewWorld(3)
	err := w.Run(func(c *comm.Comm) error {
		got, err := CollectiveRead(c, file, reqs[c.Rank()], Hints{CBBufferSize: 700, CBNodes: 2})
		results[c.Rank()] = got
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range reqs {
		if !bytes.Equal(results[r], directBytes(file, reqs[r])) {
			t.Errorf("rank %d mismatch", r)
		}
	}
}

func TestCollectiveReadEmptyRank(t *testing.T) {
	file := randomFile(1024, 3)
	reqs := [][]grid.Run{
		{{Offset: 10, Length: 100}},
		nil, // this rank wants nothing
	}
	results := make([][]byte, 2)
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) error {
		got, err := CollectiveRead(c, file, reqs[c.Rank()], Hints{CBBufferSize: 64, CBNodes: 2})
		results[c.Rank()] = got
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(results[0], directBytes(file, reqs[0])) || len(results[1]) != 0 {
		t.Error("empty-rank collective read wrong")
	}
}

func TestCollectiveReadAllEmpty(t *testing.T) {
	file := randomFile(64, 4)
	w := comm.NewWorld(3)
	err := w.Run(func(c *comm.Comm) error {
		got, err := CollectiveRead(c, file, nil, Hints{CBNodes: 2})
		if err != nil || got != nil {
			return fmt.Errorf("got %v, %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The executed accesses must equal the planned accesses for the same
// union — the property that lets model mode plan without executing.
func TestCollectiveReadMatchesPlan(t *testing.T) {
	file := randomFile(1<<15, 5)
	// Interleaved per-rank requests covering a periodic union.
	union := periodicUnion(100, 600, 3000, 10)
	p := 4
	reqs := make([][]grid.Run, p)
	for i, u := range union {
		// Split each segment among ranks.
		part := u.Length / int64(p)
		for r := 0; r < p; r++ {
			lo := u.Offset + int64(r)*part
			l := part
			if r == p-1 {
				l = u.End() - lo
			}
			reqs[r] = append(reqs[r], grid.Run{Offset: lo, Length: l})
		}
		_ = i
	}
	h := Hints{CBBufferSize: 1024, CBNodes: 3}
	traced := vfile.NewTraced(file)
	w := comm.NewWorld(p)
	err := w.Run(func(c *comm.Comm) error {
		_, err := CollectiveRead(c, traced, reqs[c.Rank()], h)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got := traced.Log.Accesses()
	want := BuildPlan(union, h).Accesses
	sort.Slice(got, func(i, j int) bool { return got[i].Offset < got[j].Offset })
	sort.Slice(want, func(i, j int) bool { return want[i].Offset < want[j].Offset })
	if len(got) != len(want) {
		t.Fatalf("executed %d accesses, planned %d\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d: executed %v, planned %v", i, got[i], want[i])
		}
	}
}

func TestIndependentReadExactAndSieved(t *testing.T) {
	file := randomFile(8192, 6)
	runs := []grid.Run{{Offset: 0, Length: 100}, {Offset: 150, Length: 100}, {Offset: 4000, Length: 50}}
	want := directBytes(file, runs)

	exact := vfile.NewTraced(file)
	got, err := IndependentRead(exact, runs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("exact read mismatch")
	}
	if n := len(exact.Log.Accesses()); n != 3 {
		t.Errorf("exact accesses = %d", n)
	}

	sieved := vfile.NewTraced(file)
	got, err = IndependentRead(sieved, runs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("sieved read mismatch")
	}
	acc := sieved.Log.Accesses()
	if len(acc) != 2 {
		t.Errorf("sieved accesses = %d, want 2 (first two runs merged)", len(acc))
	}
	st := iotrace.Analyze(acc, runs)
	if st.PhysicalBytes != 100+150+50 {
		t.Errorf("sieved physical = %d", st.PhysicalBytes)
	}
}

func TestIndependentReadEmpty(t *testing.T) {
	file := randomFile(16, 7)
	got, err := IndependentRead(file, nil, 100)
	if err != nil || len(got) != 0 {
		t.Errorf("empty read = %v, %v", got, err)
	}
}
