package mpiio

import (
	"errors"
	"sync"
	"testing"

	"bgpvr/internal/comm"
	"bgpvr/internal/grid"
	"bgpvr/internal/vfile"
)

// faultyLocked makes FaultyFile safe for the concurrent aggregators of a
// collective read.
type faultyLocked struct {
	mu sync.Mutex
	f  vfile.FaultyFile
}

func (l *faultyLocked) ReadAt(p []byte, off int64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.ReadAt(p, off)
}

func (l *faultyLocked) Size() int64 { return l.f.Size() }

// A storage fault during a collective read must surface as an error on
// the world, not hang the other ranks.
func TestCollectiveReadPropagatesFault(t *testing.T) {
	base := &vfile.MemFile{Data: make([]byte, 1<<14)}
	file := &faultyLocked{f: vfile.FaultyFile{F: base, FailAfter: 1}}
	const p = 4
	reqs := make([][]grid.Run, p)
	for r := range reqs {
		reqs[r] = []grid.Run{{Offset: int64(r * 2048), Length: 1024}}
	}
	w := comm.NewWorld(p)
	err := w.Run(func(c *comm.Comm) error {
		_, err := CollectiveRead(c, file, reqs[c.Rank()], Hints{CBBufferSize: 512, CBNodes: 4})
		return err
	})
	if err == nil {
		t.Fatal("fault not propagated")
	}
	if !errors.Is(err, vfile.ErrInjected) && err.Error() == "" {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIndependentReadPropagatesFault(t *testing.T) {
	base := &vfile.MemFile{Data: make([]byte, 4096)}
	f := &vfile.FaultyFile{F: base, FailAfter: 0}
	if _, err := IndependentRead(f, []grid.Run{{Offset: 0, Length: 10}}, 0); !errors.Is(err, vfile.ErrInjected) {
		t.Errorf("err = %v", err)
	}
}
