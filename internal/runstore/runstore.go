// Package runstore is the append-only run registry behind cross-run
// drift detection: each recorded run is one JSONL line holding a run
// ID, the git revision, a digest of the run configuration, a
// caller-supplied timestamp, and the full perf report (including the
// fidelity scorecard when present). cmd/bgpvr and cmd/experiments
// append with -run-record, CI uploads the file as the BENCH trajectory
// artifact, cmd/perfhistory renders per-metric trends over it, and the
// debug endpoint streams it at /runs. A pairwise perfdiff can only
// compare two snapshots; the store is what makes slow drift across
// many PRs visible.
package runstore

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"bgpvr/internal/telemetry"
)

// Record is one stored run.
type Record struct {
	// ID identifies the run: a short hash of the timestamp, revision,
	// and config digest.
	ID string `json:"id"`
	// Time is the caller-supplied RFC3339 timestamp. The store never
	// reads a clock itself: deterministic tests and replayed CI runs
	// decide what "when" means.
	Time string `json:"time"`
	// GitRev is the source revision the run was built from.
	GitRev string `json:"git_rev,omitempty"`
	// ConfigDigest fingerprints the run configuration so trend tools
	// only compare like with like.
	ConfigDigest string `json:"config_digest,omitempty"`
	// Report is the full schema-versioned perf report.
	Report *telemetry.Report `json:"report"`
}

// ConfigDigest fingerprints a run configuration: a short sha256 over
// the sorted key=value pairs.
func ConfigDigest(cfg map[string]string) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, cfg[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// NewRecord assembles a record for a finished run. timestamp is
// caller-supplied (RFC3339); the ID is derived from it together with
// the revision and config digest.
func NewRecord(rep *telemetry.Report, gitRev, timestamp string) Record {
	digest := ""
	if rep != nil {
		digest = ConfigDigest(rep.Config)
	}
	h := sha256.Sum256([]byte(timestamp + "\x00" + gitRev + "\x00" + digest))
	return Record{
		ID:           hex.EncodeToString(h[:])[:12],
		Time:         timestamp,
		GitRev:       gitRev,
		ConfigDigest: digest,
		Report:       rep,
	}
}

// Append writes rec as one JSONL line at the end of path, creating the
// file and missing parent directories. The write is a single O_APPEND
// syscall, so concurrent appenders interleave whole lines.
func Append(path string, rec Record) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: encoding record: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runstore: appending to %s: %w", path, err)
	}
	return nil
}

// Read loads every record of the store, oldest first. A corrupt or
// truncated *trailing* record — the signature of an interrupted append
// — is dropped silently: losing the last run must not brick the whole
// history. A corrupt line in the middle of the file is real damage and
// returns an error naming the line.
func Read(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	badLine := 0 // 1-based line number of the first undecodable line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil || rec.Report == nil {
			if badLine == 0 {
				badLine = line
			}
			continue
		}
		if badLine != 0 {
			// A decodable record *after* a bad line means mid-file
			// corruption, not a truncated tail.
			return nil, fmt.Errorf("runstore: %s: corrupt record at line %d", path, badLine)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runstore: reading %s: %w", path, err)
	}
	return recs, nil
}

// GitRev resolves the source revision for a record: $GITHUB_SHA when
// CI sets it, otherwise git rev-parse, otherwise "unknown".
func GitRev() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
