package runstore

import (
	"fmt"
	"math"
	"sort"

	"bgpvr/internal/stats"
)

// Series is one metric's trajectory over the stored runs, oldest
// first. Runs that do not carry the metric hold NaN, so every series
// is index-aligned with the record list.
type Series struct {
	Name   string
	Unit   string // "s", "ratio", "score", "count", "rate"
	Values []float64
}

// Valid returns how many entries are usable (finite) observations.
func (s Series) Valid() int {
	n := 0
	for _, v := range s.Values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			n++
		}
	}
	return n
}

// Last returns the newest usable observation (NaN when there is none).
func (s Series) Last() float64 {
	for i := len(s.Values) - 1; i >= 0; i-- {
		if !math.IsNaN(s.Values[i]) && !math.IsInf(s.Values[i], 0) {
			return s.Values[i]
		}
	}
	return math.NaN()
}

// Metrics extracts the tracked metric series from the records: total
// frame time, each phase's mean time, each phase's imbalance factor,
// the critical-path duration, the aggregate fidelity score, for
// records carrying a render-service load test each concurrency level's
// p99 latency and throughput, and for records carrying a flowsim
// section the simulation's wall time and observed approximation error.
// Metric order is deterministic: the fixed metrics first, then phase
// metrics sorted by name.
func Metrics(recs []Record) []Series {
	n := len(recs)
	blank := func(name, unit string) *Series {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.NaN()
		}
		return &Series{Name: name, Unit: unit, Values: vals}
	}
	total := blank("total_sec", "s")
	critpath := blank("critpath path_sec", "s")
	fidelity := blank("fidelity score", "score")
	flowsimWall := blank("flowsim wall_sec", "s")
	flowsimErr := blank("flowsim observed_err", "ratio")
	phase := map[string]*Series{}
	imbal := map[string]*Series{}
	service := map[string]*Series{}
	for i, rec := range recs {
		r := rec.Report
		if r == nil {
			continue
		}
		if r.TotalSec > 0 {
			total.Values[i] = r.TotalSec
		}
		if r.CritPath != nil {
			critpath.Values[i] = r.CritPath.PathSec
		}
		if r.Fidelity != nil {
			fidelity.Values[i] = r.Fidelity.Score
		}
		for _, p := range r.Phases {
			s, ok := phase[p.Name]
			if !ok {
				s = blank("phase "+p.Name+" mean_sec", "s")
				phase[p.Name] = s
			}
			s.Values[i] = p.MeanSec
		}
		for _, p := range r.Imbalance {
			s, ok := imbal[p.Phase]
			if !ok {
				s = blank("imbalance "+p.Phase+" max/mean", "ratio")
				imbal[p.Phase] = s
			}
			s.Values[i] = p.Imbalance
		}
		if r.Flowsim != nil {
			if r.Flowsim.WallSec > 0 {
				flowsimWall.Values[i] = r.Flowsim.WallSec
			}
			// 0 is a real observation (exact kernel, or a binding
			// clamp) — record it whenever the section is present.
			flowsimErr.Values[i] = r.Flowsim.ObservedErr
		}
		if r.Service != nil {
			put := func(name, unit string, v float64) {
				s, ok := service[name]
				if !ok {
					s = blank(name, unit)
					service[name] = s
				}
				s.Values[i] = v
			}
			for _, p := range r.Service.Points {
				tag := fmt.Sprintf("service c=%d ", p.Concurrency)
				put(tag+"p99_sec", "s", p.P99Ms/1e3)
				put(tag+"rps", "rate", p.RPS)
			}
		}
	}
	out := []Series{*total, *fidelity, *critpath, *flowsimWall, *flowsimErr}
	for _, m := range []map[string]*Series{phase, imbal, service} {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, *m[name])
		}
	}
	return out
}

// Changepoint is a detected level shift in a metric series.
type Changepoint struct {
	// Index is the first run of the shifted segment.
	Index int
	// Before and After are the segment means either side of the split.
	Before, After float64
	// Shift is the relative change (After-Before)/|Before|.
	Shift float64
}

// DetectChange runs a rolling changepoint test over the series: every
// split point with at least minSeg usable observations on each side is
// scored by the relative shift between the segment means, and the
// strongest split is returned when its magnitude exceeds relThreshold
// (e.g. 0.10 for 10%). NaN entries are ignored. Returns nil when no
// split clears the threshold — the cross-run analogue of perfdiff's
// pairwise gate, catching slow drift and step changes that any single
// pair of runs would miss.
func DetectChange(vals []float64, minSeg int, relThreshold float64) *Changepoint {
	if minSeg < 1 {
		minSeg = 1
	}
	var best *Changepoint
	for split := 1; split < len(vals); split++ {
		before, after := segMean(vals[:split]), segMean(vals[split:])
		if before.N < minSeg || after.N < minSeg || before.Mean() == 0 {
			continue
		}
		shift := (after.Mean() - before.Mean()) / math.Abs(before.Mean())
		if math.Abs(shift) <= relThreshold {
			continue
		}
		if best == nil || math.Abs(shift) > math.Abs(best.Shift) {
			best = &Changepoint{Index: split, Before: before.Mean(), After: after.Mean(), Shift: shift}
		}
	}
	return best
}

func segMean(vals []float64) stats.Summary {
	var s stats.Summary
	for _, v := range vals {
		if math.IsInf(v, 0) {
			continue
		}
		s.Add(v) // Summary.Add already rejects NaN
	}
	return s
}

// Worse reports whether a shift in this unit is a degradation: times,
// ratios, and counts degrade upward; scores and rates (throughput)
// degrade downward.
func Worse(unit string, shift float64) bool {
	if unit == "score" || unit == "rate" {
		return shift < 0
	}
	return shift > 0
}
