package runstore

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpvr/internal/telemetry"
)

func testReport(total float64) *telemetry.Report {
	r := telemetry.NewReport("test")
	r.Config = map[string]string{"mode": "model", "procs": "1024"}
	r.TotalSec = total
	return r
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "runs.jsonl")
	for i, total := range []float64{1.0, 1.5, 2.0} {
		rec := NewRecord(testReport(total), "abc123", "2026-08-06T00:00:0"+string(rune('0'+i))+"Z")
		if err := Append(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	for i, want := range []float64{1.0, 1.5, 2.0} {
		if recs[i].Report.TotalSec != want {
			t.Errorf("record %d total = %v, want %v (order not oldest-first?)", i, recs[i].Report.TotalSec, want)
		}
		if recs[i].GitRev != "abc123" || recs[i].ID == "" {
			t.Errorf("record %d metadata incomplete: %+v", i, recs[i])
		}
	}
}

func TestReadDropsTruncatedTrailingRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path, NewRecord(testReport(1), "aaa", "2026-08-06T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, NewRecord(testReport(2), "bbb", "2026-08-06T00:00:01Z")); err != nil {
		t.Fatal(err)
	}
	// Simulate an interrupted append: chop the last line mid-JSON.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatalf("truncated tail should be dropped silently, got error: %v", err)
	}
	if len(recs) != 1 || recs[0].Report.TotalSec != 1 {
		t.Fatalf("read %d records after truncation, want the 1 intact one", len(recs))
	}
}

func TestReadDropsGarbageTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path, NewRecord(testReport(1), "aaa", "2026-08-06T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"id\":\"x\"}\n"); err != nil { // decodes but has no report
		t.Fatal(err)
	}
	f.Close()
	recs, err := Read(path)
	if err != nil {
		t.Fatalf("report-less tail should be dropped silently, got error: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("read %d records, want 1", len(recs))
	}
}

func TestReadErrorsOnMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path, NewRecord(testReport(1), "aaa", "2026-08-06T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := Append(path, NewRecord(testReport(3), "ccc", "2026-08-06T00:00:02Z")); err != nil {
		t.Fatal(err)
	}
	_, err = Read(path)
	if err == nil {
		t.Fatal("mid-file corruption should be an error, got nil")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name line 2", err)
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path, NewRecord(testReport(1), "aaa", "2026-08-06T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := Append(path, NewRecord(testReport(2), "bbb", "2026-08-06T00:00:01Z")); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records around blank lines, want 2", len(recs))
	}
}

func TestConfigDigestDeterministic(t *testing.T) {
	a := ConfigDigest(map[string]string{"mode": "model", "procs": "1024"})
	b := ConfigDigest(map[string]string{"procs": "1024", "mode": "model"})
	if a != b {
		t.Errorf("digest depends on map order: %s vs %s", a, b)
	}
	if len(a) != 12 {
		t.Errorf("digest %q is not 12 hex chars", a)
	}
	c := ConfigDigest(map[string]string{"mode": "model", "procs": "2048"})
	if a == c {
		t.Errorf("different configs share digest %s", a)
	}
}

func TestNewRecordIDDeterministic(t *testing.T) {
	r1 := NewRecord(testReport(1), "abc", "2026-08-06T00:00:00Z")
	r2 := NewRecord(testReport(2), "abc", "2026-08-06T00:00:00Z") // same config, same time
	if r1.ID != r2.ID {
		t.Errorf("IDs differ for identical (time, rev, config): %s vs %s", r1.ID, r2.ID)
	}
	r3 := NewRecord(testReport(1), "abc", "2026-08-06T00:00:01Z")
	if r1.ID == r3.ID {
		t.Errorf("IDs collide across timestamps: %s", r1.ID)
	}
}

func TestMetricsSeries(t *testing.T) {
	mk := func(total, score float64) Record {
		r := testReport(total)
		if !math.IsNaN(score) {
			r.Fidelity = &telemetry.FidelityStat{Score: score}
		}
		return NewRecord(r, "abc", "2026-08-06T00:00:00Z")
	}
	recs := []Record{mk(1.0, 0.9), mk(1.1, math.NaN()), mk(1.2, 0.95)}
	series := Metrics(recs)
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	total, ok := byName["total_sec"]
	if !ok {
		t.Fatal("no total_sec series")
	}
	if total.Valid() != 3 || total.Last() != 1.2 {
		t.Errorf("total_sec valid=%d last=%v, want 3/1.2", total.Valid(), total.Last())
	}
	fid, ok := byName["fidelity score"]
	if !ok {
		t.Fatal("no fidelity score series")
	}
	if fid.Valid() != 2 {
		t.Errorf("fidelity valid=%d, want 2 (middle run has no scorecard)", fid.Valid())
	}
	if !math.IsNaN(fid.Values[1]) {
		t.Errorf("run without fidelity should be NaN-aligned, got %v", fid.Values[1])
	}
	if fid.Last() != 0.95 {
		t.Errorf("fidelity last = %v, want 0.95", fid.Last())
	}
}

func TestDetectChange(t *testing.T) {
	if cp := DetectChange([]float64{1, 1, 1.01, 1, 1}, 2, 0.10); cp != nil {
		t.Errorf("flat series flagged: %+v", cp)
	}
	cp := DetectChange([]float64{1, 1, 1, 1.5, 1.5, 1.5}, 2, 0.10)
	if cp == nil {
		t.Fatal("50% step not detected")
	}
	if cp.Index != 3 {
		t.Errorf("step located at index %d, want 3", cp.Index)
	}
	if cp.Shift < 0.45 || cp.Shift > 0.55 {
		t.Errorf("shift = %v, want ~0.5", cp.Shift)
	}
	// NaN holes must not break segment means.
	cp = DetectChange([]float64{1, math.NaN(), 1, 2, math.NaN(), 2}, 2, 0.10)
	if cp == nil {
		t.Error("step through NaN holes not detected")
	}
	// Too few usable points on a side -> nil.
	if cp := DetectChange([]float64{1, 2}, 2, 0.10); cp != nil {
		t.Errorf("2-point series cannot satisfy minseg 2, got %+v", cp)
	}
}

func TestWorse(t *testing.T) {
	if !Worse("s", 0.2) || Worse("s", -0.2) {
		t.Error("seconds should degrade upward")
	}
	if !Worse("score", -0.2) || Worse("score", 0.2) {
		t.Error("score should degrade downward")
	}
	if !Worse("ratio", 0.2) {
		t.Error("ratio should degrade upward")
	}
}
