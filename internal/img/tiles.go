package img

// PartitionTiles divides a w x h image into m rectangular tiles, one per
// compositor, as close to square as possible. Direct-send assigns each
// compositor such a subregion of the final image; compact 2D tiles (as
// opposed to scanline spans) are what give direct-send its O(m * n^(1/3))
// total message count — a tile overlaps roughly one column of projected
// blocks.
//
// The tile grid (mx, my) is the factorization of m whose tile shape is
// closest to square for the given image, with the remainder pixels
// distributed to the lowest-index rows/columns. The m tiles partition
// the image exactly.
func PartitionTiles(w, h, m int) []Rect {
	return NewTileGrid(w, h, m).All()
}

// tileScore measures how far a (mx, my) grid's tiles are from square;
// lower is better.
func tileScore(w, h, mx, my int) float64 {
	tw := float64(w) / float64(mx)
	th := float64(h) / float64(my)
	if tw > th {
		return tw / th
	}
	return th / tw
}

// axisSplit returns the half-open pixel range of part i of n along an
// axis of length l, remainder to the lowest indices.
func axisSplit(l, n, i int) (lo, hi int) {
	q, r := l/n, l%n
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}
