package img

// TileGrid is the regular (MX x MY) tile decomposition behind
// PartitionTiles, with O(1) rect-to-tile-range queries. The schedule
// generators need this: at 32K renderers and 32K compositors, probing
// every (rect, tile) pair would cost a billion intersections, while each
// rect actually overlaps only a handful of tiles.
type TileGrid struct {
	W, H   int
	MX, MY int
}

// NewTileGrid chooses the near-square (MX, MY) factorization of m for a
// w x h image (same choice as PartitionTiles).
func NewTileGrid(w, h, m int) TileGrid {
	if m <= 0 {
		panic("img: NewTileGrid requires m > 0")
	}
	bestX := 1
	bestScore := tileScore(w, h, 1, m)
	for mx := 1; mx <= m; mx++ {
		if m%mx != 0 {
			continue
		}
		if s := tileScore(w, h, mx, m/mx); s < bestScore {
			bestX, bestScore = mx, s
		}
	}
	return TileGrid{W: w, H: h, MX: bestX, MY: m / bestX}
}

// Tiles returns the number of tiles (MX*MY).
func (g TileGrid) Tiles() int { return g.MX * g.MY }

// Tile returns the rectangle of tile i (row-major: i = ty*MX + tx).
func (g TileGrid) Tile(i int) Rect {
	tx, ty := i%g.MX, i/g.MX
	x0, x1 := axisSplit(g.W, g.MX, tx)
	y0, y1 := axisSplit(g.H, g.MY, ty)
	return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// axisIndex returns the partition index along an axis of length l split
// into n parts that contains coordinate x (0 <= x < l).
func axisIndex(l, n, x int) int {
	q, r := l/n, l%n
	if q == 0 {
		// More parts than pixels: parts 0..r-1 have one pixel each.
		return x
	}
	if x < r*(q+1) {
		return x / (q + 1)
	}
	return (x-r*(q+1))/q + r
}

// Range returns the half-open tile index ranges [tx0, tx1) x [ty0, ty1)
// of tiles intersecting rect (clipped to the image). Empty rects yield
// empty ranges.
func (g TileGrid) Range(rect Rect) (tx0, tx1, ty0, ty1 int) {
	rect = rect.Intersect(Rect{X0: 0, Y0: 0, X1: g.W, Y1: g.H})
	if rect.Empty() {
		return 0, 0, 0, 0
	}
	tx0 = axisIndex(g.W, g.MX, rect.X0)
	tx1 = axisIndex(g.W, g.MX, rect.X1-1) + 1
	ty0 = axisIndex(g.H, g.MY, rect.Y0)
	ty1 = axisIndex(g.H, g.MY, rect.Y1-1) + 1
	return
}

// All returns every tile in index order; PartitionTiles is equivalent
// to NewTileGrid(w, h, m).All().
func (g TileGrid) All() []Rect {
	out := make([]Rect, g.Tiles())
	for i := range out {
		out[i] = g.Tile(i)
	}
	return out
}
