// Package img provides the image representation used by the renderer and
// compositor: float32 premultiplied-alpha RGBA pixels, the Porter-Duff
// "over" operator, rectangular and scanline-range subimages, and simple
// PPM/PGM encoders for writing results to disk.
//
// Premultiplied alpha is essential here: it makes "over" associative, so
// partial images composited in visibility order by any grouping
// (direct-send regions, binary-swap halves) produce the same final image
// as a serial front-to-back accumulation.
package img

import (
	"fmt"
	"math"
)

// RGBA is one premultiplied-alpha pixel. Components are "energy"
// values in [0, A] with A in [0, 1] for physically meaningful pixels,
// though the type does not enforce it.
type RGBA struct {
	R, G, B, A float32
}

// Over composites pixel f over pixel b (both premultiplied) and returns
// the result: f + (1-f.A)*b.
func Over(f, b RGBA) RGBA {
	t := 1 - f.A
	return RGBA{
		R: f.R + t*b.R,
		G: f.G + t*b.G,
		B: f.B + t*b.B,
		A: f.A + t*b.A,
	}
}

// OverSlices composites front over back element-wise, storing the result
// in back (so that repeated compositing into an accumulator does not
// allocate). The slices must have equal length.
func OverSlices(front, back []RGBA) {
	if len(front) != len(back) {
		panic("img: OverSlices length mismatch")
	}
	for i, f := range front {
		t := 1 - f.A
		b := back[i]
		back[i] = RGBA{f.R + t*b.R, f.G + t*b.G, f.B + t*b.B, f.A + t*b.A}
	}
}

// UnderSlices composites back under front, storing the result in back.
// It is the dual used when accumulating in front-to-back arrival order:
// acc = acc over incoming.
func UnderSlices(back, incoming []RGBA) {
	if len(back) != len(incoming) {
		panic("img: UnderSlices length mismatch")
	}
	for i := range back {
		f := back[i]
		t := 1 - f.A
		b := incoming[i]
		back[i] = RGBA{f.R + t*b.R, f.G + t*b.G, f.B + t*b.B, f.A + t*b.A}
	}
}

// Image is a W x H pixel buffer in row-major order (row 0 at the top).
type Image struct {
	W, H int
	Pix  []RGBA
}

// New allocates a transparent-black image.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGBA, w*h)}
}

// At returns the pixel at (x, y).
func (m *Image) At(x, y int) RGBA { return m.Pix[y*m.W+x] }

// Set stores the pixel at (x, y).
func (m *Image) Set(x, y int, p RGBA) { m.Pix[y*m.W+x] = p }

// Clear resets all pixels to transparent black.
func (m *Image) Clear() {
	for i := range m.Pix {
		m.Pix[i] = RGBA{}
	}
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	c := New(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// MaxDiff returns the L-infinity distance between two images of equal
// size, across all components of all pixels.
func MaxDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("img: MaxDiff size mismatch")
	}
	var d float64
	for i := range a.Pix {
		p, q := a.Pix[i], b.Pix[i]
		for _, c := range [4]float64{
			float64(p.R - q.R), float64(p.G - q.G),
			float64(p.B - q.B), float64(p.A - q.A),
		} {
			d = math.Max(d, math.Abs(c))
		}
	}
	return d
}

// Rect is a rectangle [X0,X1) x [Y0,Y1) in pixel coordinates.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// W returns the rectangle width (0 if empty).
func (r Rect) W() int {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the rectangle height (0 if empty).
func (r Rect) H() int {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0
}

// NumPixels returns the pixel count of the rectangle.
func (r Rect) NumPixels() int { return r.W() * r.H() }

// Intersect clips r to s.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X0: max(r.X0, s.X0), Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1), Y1: min(r.Y1, s.Y1),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Span is a contiguous range of pixels [Lo, Hi) in the row-major linear
// ordering of a full-size image. Direct-send assigns each compositor a
// span of the final image (a contiguous 1/m share, as in the paper).
type Span struct {
	Lo, Hi int
}

// Len returns the number of pixels in the span.
func (s Span) Len() int {
	if s.Hi <= s.Lo {
		return 0
	}
	return s.Hi - s.Lo
}

// Intersect clips s to t.
func (s Span) Intersect(t Span) Span {
	return Span{Lo: max(s.Lo, t.Lo), Hi: min(s.Hi, t.Hi)}
}

// PartitionSpans divides the n pixels of an image among m owners as
// evenly as possible (remainder to the lowest ranks), returning m spans
// that partition [0, n).
func PartitionSpans(n, m int) []Span {
	if m <= 0 {
		panic("img: PartitionSpans requires m > 0")
	}
	out := make([]Span, m)
	q, r := n/m, n%m
	lo := 0
	for i := 0; i < m; i++ {
		hi := lo + q
		if i < r {
			hi++
		}
		out[i] = Span{lo, hi}
		lo = hi
	}
	return out
}

// RectSpanRows returns, for each row y of rect, the linear-pixel span it
// occupies in a w-wide image. It is used to clip a rendered subimage
// rectangle against a compositor's span ownership.
func RectSpanRows(rect Rect, w int) []Span {
	if rect.Empty() {
		return nil
	}
	out := make([]Span, 0, rect.H())
	for y := rect.Y0; y < rect.Y1; y++ {
		lo := y*w + rect.X0
		out = append(out, Span{lo, lo + rect.W()})
	}
	return out
}
