package img

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
)

// srgb8 converts a linear premultiplied component (already divided by
// alpha where appropriate) to an 8-bit sRGB-ish value using a simple
// gamma of 2.2, clamped.
func srgb8(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(math.Round(255 * math.Pow(v, 1/2.2)))
}

// EncodePPM writes the image as a binary PPM (P6) over a given
// background gray level (0..1). Premultiplied pixels are composited over
// the background before gamma encoding.
func (m *Image) EncodePPM(w io.Writer, background float64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	buf := make([]byte, 0, 3*m.W)
	for y := 0; y < m.H; y++ {
		buf = buf[:0]
		for x := 0; x < m.W; x++ {
			p := m.At(x, y)
			t := 1 - float64(p.A)
			buf = append(buf,
				srgb8(float64(p.R)+t*background),
				srgb8(float64(p.G)+t*background),
				srgb8(float64(p.B)+t*background))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePPM writes the image to a file path as PPM.
func (m *Image) WritePPM(path string, background float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.EncodePPM(f, background); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EncodePGM writes a grayscale PGM (P5) from a [0,1] float field, used
// for access-pattern maps (Fig 9 analogue).
func EncodePGM(w io.Writer, width, height int, v []float64) error {
	if len(v) != width*height {
		return fmt.Errorf("img: EncodePGM needs %d values, got %d", width*height, len(v))
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	for _, x := range v {
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		if err := bw.WriteByte(byte(math.Round(255 * x))); err != nil {
			return err
		}
	}
	return bw.Flush()
}
