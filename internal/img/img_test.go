package img

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randPixel(rng *rand.Rand) RGBA {
	a := rng.Float32()
	return RGBA{rng.Float32() * a, rng.Float32() * a, rng.Float32() * a, a}
}

func pixAlmostEq(p, q RGBA, eps float32) bool {
	abs := func(x float32) float32 {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(p.R-q.R) <= eps && abs(p.G-q.G) <= eps && abs(p.B-q.B) <= eps && abs(p.A-q.A) <= eps
}

func TestOverIdentity(t *testing.T) {
	p := RGBA{0.2, 0.3, 0.1, 0.5}
	if got := Over(RGBA{}, p); got != p {
		t.Errorf("transparent over p = %v", got)
	}
	opaque := RGBA{1, 0, 0, 1}
	if got := Over(opaque, p); got != opaque {
		t.Errorf("opaque over p = %v", got)
	}
}

// Property: Over is associative on premultiplied pixels (the invariant
// that makes every compositing algorithm in this repo interchangeable).
func TestOverAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a, b, c := randPixel(rng), randPixel(rng), randPixel(rng)
		l := Over(Over(a, b), c)
		r := Over(a, Over(b, c))
		if !pixAlmostEq(l, r, 1e-5) {
			t.Fatalf("not associative: %v vs %v", l, r)
		}
	}
}

// Property: compositing valid premultiplied pixels keeps alpha in [0,1]
// and colors within [0, A].
func TestOverBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		p := Over(randPixel(rng), randPixel(rng))
		if p.A < 0 || p.A > 1+1e-6 {
			t.Fatalf("alpha out of range: %v", p)
		}
		for _, c := range []float32{p.R, p.G, p.B} {
			if c < 0 || c > p.A+1e-6 {
				t.Fatalf("color exceeds alpha: %v", p)
			}
		}
	}
}

func TestOverUnderSlicesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	front := make([]RGBA, n)
	back := make([]RGBA, n)
	for i := range front {
		front[i], back[i] = randPixel(rng), randPixel(rng)
	}
	// acc starts as front, UnderSlices(acc, back) == OverSlices(front, back).
	acc := append([]RGBA(nil), front...)
	UnderSlices(acc, back)
	b2 := append([]RGBA(nil), back...)
	OverSlices(front, b2)
	for i := range acc {
		if acc[i] != b2[i] {
			t.Fatalf("pixel %d: %v vs %v", i, acc[i], b2[i])
		}
	}
}

func TestOverSlicesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	OverSlices(make([]RGBA, 2), make([]RGBA, 3))
}

func TestImageBasics(t *testing.T) {
	m := New(4, 3)
	if len(m.Pix) != 12 {
		t.Fatalf("len = %d", len(m.Pix))
	}
	p := RGBA{0.1, 0.2, 0.3, 0.4}
	m.Set(2, 1, p)
	if m.At(2, 1) != p {
		t.Error("Set/At mismatch")
	}
	if m.Pix[1*4+2] != p {
		t.Error("row-major layout violated")
	}
	c := m.Clone()
	c.Set(0, 0, p)
	if m.At(0, 0) == p {
		t.Error("Clone aliases storage")
	}
	m.Clear()
	if m.At(2, 1) != (RGBA{}) {
		t.Error("Clear failed")
	}
}

func TestMaxDiff(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	if MaxDiff(a, b) != 0 {
		t.Error("identical images should differ by 0")
	}
	b.Set(1, 1, RGBA{0, 0.25, 0, 0})
	if d := MaxDiff(a, b); math.Abs(d-0.25) > 1e-9 {
		t.Errorf("MaxDiff = %v", d)
	}
}

func TestRect(t *testing.T) {
	r := Rect{1, 2, 5, 4}
	if r.W() != 4 || r.H() != 2 || r.NumPixels() != 8 || r.Empty() {
		t.Errorf("rect geometry wrong: %v", r)
	}
	e := Rect{3, 3, 3, 9}
	if !e.Empty() || e.NumPixels() != 0 || e.W() != 0 {
		t.Errorf("empty rect mishandled: %v", e)
	}
	i := r.Intersect(Rect{0, 0, 3, 10})
	if i != (Rect{1, 2, 3, 4}) {
		t.Errorf("Intersect = %v", i)
	}
}

// Property: PartitionSpans is a partition of [0, n) into m ordered,
// adjacent spans whose sizes differ by at most one.
func TestPartitionSpansQuick(t *testing.T) {
	f := func(nn, mm uint16) bool {
		n, m := int(nn%10000), int(mm%256)+1
		spans := PartitionSpans(n, m)
		if len(spans) != m {
			return false
		}
		lo := 0
		minLen, maxLen := 1<<30, 0
		for _, s := range spans {
			if s.Lo != lo || s.Hi < s.Lo {
				return false
			}
			lo = s.Hi
			if s.Len() < minLen {
				minLen = s.Len()
			}
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
		}
		return lo == n && maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpanIntersect(t *testing.T) {
	s := Span{10, 20}.Intersect(Span{15, 30})
	if s != (Span{15, 20}) || s.Len() != 5 {
		t.Errorf("got %v", s)
	}
	if (Span{10, 20}).Intersect(Span{25, 30}).Len() != 0 {
		t.Error("disjoint spans should intersect empty")
	}
}

func TestRectSpanRows(t *testing.T) {
	rows := RectSpanRows(Rect{2, 1, 5, 3}, 10)
	want := []Span{{12, 15}, {22, 25}}
	if len(rows) != len(want) {
		t.Fatalf("got %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
	if RectSpanRows(Rect{}, 10) != nil {
		t.Error("empty rect should give nil")
	}
}

func TestEncodePPM(t *testing.T) {
	m := New(2, 1)
	m.Set(0, 0, RGBA{1, 1, 1, 1}) // opaque white
	m.Set(1, 0, RGBA{})           // transparent -> background
	var buf bytes.Buffer
	if err := m.EncodePPM(&buf, 0); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P6\n2 1\n255\n") {
		t.Fatalf("header wrong: %q", s[:20])
	}
	pix := buf.Bytes()[len("P6\n2 1\n255\n"):]
	if len(pix) != 6 {
		t.Fatalf("payload %d bytes", len(pix))
	}
	if pix[0] != 255 || pix[1] != 255 || pix[2] != 255 {
		t.Errorf("white pixel = %v", pix[:3])
	}
	if pix[3] != 0 || pix[4] != 0 || pix[5] != 0 {
		t.Errorf("background pixel = %v", pix[3:])
	}
}

func TestEncodePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodePGM(&buf, 2, 2, []float64{0, 1, 0.5, 2}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("header wrong: %q", b)
	}
	pix := b[len("P5\n2 2\n255\n"):]
	if pix[0] != 0 || pix[1] != 255 || pix[3] != 255 {
		t.Errorf("pixels = %v", pix)
	}
	if err := EncodePGM(&buf, 2, 2, []float64{1}); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestSrgb8Monotone(t *testing.T) {
	prev := byte(0)
	for v := 0.0; v <= 1.0; v += 1.0 / 512 {
		b := srgb8(v)
		if b < prev {
			t.Fatalf("srgb8 not monotone at %v", v)
		}
		prev = b
	}
	if srgb8(-1) != 0 || srgb8(2) != 255 {
		t.Error("clamping broken")
	}
}
