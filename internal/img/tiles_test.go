package img

import (
	"testing"
	"testing/quick"
)

// Property: PartitionTiles partitions the image exactly — every pixel is
// covered by exactly one tile.
func TestPartitionTilesPartition(t *testing.T) {
	f := func(ww, hh, mm uint8) bool {
		w, h, m := int(ww%40)+1, int(hh%40)+1, int(mm%16)+1
		tiles := PartitionTiles(w, h, m)
		if len(tiles) != m {
			return false
		}
		covered := make([]int, w*h)
		for _, tile := range tiles {
			for y := tile.Y0; y < tile.Y1; y++ {
				for x := tile.X0; x < tile.X1; x++ {
					if x < 0 || x >= w || y < 0 || y >= h {
						return false
					}
					covered[y*w+x]++
				}
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPartitionTilesNearSquare(t *testing.T) {
	// A square image with a square tile count gives a square grid.
	tiles := PartitionTiles(100, 100, 16)
	for _, tile := range tiles {
		if tile.W() != 25 || tile.H() != 25 {
			t.Fatalf("tile %v not 25x25", tile)
		}
	}
	// A wide image prefers more columns.
	tiles = PartitionTiles(200, 50, 4)
	if tiles[0].W() != 50 || tiles[0].H() != 50 {
		t.Errorf("wide image tile = %v, want 50x50", tiles[0])
	}
}

func TestPartitionTilesSingle(t *testing.T) {
	tiles := PartitionTiles(7, 9, 1)
	if len(tiles) != 1 || tiles[0] != (Rect{X0: 0, Y0: 0, X1: 7, Y1: 9}) {
		t.Errorf("tiles = %v", tiles)
	}
}

func TestPartitionTilesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PartitionTiles(10, 10, 0)
}

func TestPartitionTilesPrimeCount(t *testing.T) {
	// A prime m forces a 1 x m or m x 1 grid; the partition must hold.
	tiles := PartitionTiles(64, 64, 7)
	var total int
	for _, tile := range tiles {
		total += tile.NumPixels()
	}
	if total != 64*64 {
		t.Errorf("prime tile count does not partition: %d", total)
	}
}
