package img

import (
	"math/rand"
	"testing"
)

func TestTileGridMatchesPartitionTiles(t *testing.T) {
	for _, c := range []struct{ w, h, m int }{
		{10, 10, 2}, {100, 60, 12}, {7, 31, 5}, {1600, 1600, 2048}, {64, 64, 64},
	} {
		g := NewTileGrid(c.w, c.h, c.m)
		tiles := PartitionTiles(c.w, c.h, c.m)
		if g.Tiles() != len(tiles) {
			t.Fatalf("%+v: tile counts differ", c)
		}
		for i, want := range tiles {
			if got := g.Tile(i); got != want {
				t.Fatalf("%+v tile %d: %v vs %v", c, i, got, want)
			}
		}
	}
}

func TestAxisIndexInvertsAxisSplit(t *testing.T) {
	for _, c := range []struct{ l, n int }{{10, 3}, {100, 7}, {5, 5}, {3, 7}, {1600, 45}} {
		for i := 0; i < c.n; i++ {
			lo, hi := axisSplit(c.l, c.n, i)
			for x := lo; x < hi; x++ {
				if got := axisIndex(c.l, c.n, x); got != i {
					t.Fatalf("axisIndex(%d,%d,%d) = %d, want %d", c.l, c.n, x, got, i)
				}
			}
		}
	}
}

// Property: Range returns exactly the tiles a rect intersects.
func TestTileGridRangeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		w, h := rng.Intn(60)+1, rng.Intn(60)+1
		m := rng.Intn(24) + 1
		g := NewTileGrid(w, h, m)
		x0, y0 := rng.Intn(w+10)-5, rng.Intn(h+10)-5
		rect := Rect{X0: x0, Y0: y0, X1: x0 + rng.Intn(30), Y1: y0 + rng.Intn(30)}
		tx0, tx1, ty0, ty1 := g.Range(rect)
		inRange := func(i int) bool {
			tx, ty := i%g.MX, i/g.MX
			return tx >= tx0 && tx < tx1 && ty >= ty0 && ty < ty1
		}
		for i := 0; i < g.Tiles(); i++ {
			overlaps := !g.Tile(i).Intersect(rect).Empty()
			if overlaps != inRange(i) {
				t.Fatalf("w=%d h=%d m=%d rect=%v tile %d (%v): overlaps=%v inRange=%v",
					w, h, m, rect, i, g.Tile(i), overlaps, inRange(i))
			}
		}
	}
}

func TestTileGridRangeEmptyRect(t *testing.T) {
	g := NewTileGrid(10, 10, 4)
	tx0, tx1, ty0, ty1 := g.Range(Rect{X0: 5, Y0: 5, X1: 5, Y1: 9})
	if tx0 != tx1 && ty0 != ty1 {
		t.Errorf("empty rect gave range %d..%d, %d..%d", tx0, tx1, ty0, ty1)
	}
	// Entirely off-image.
	tx0, tx1, _, _ = g.Range(Rect{X0: 100, Y0: 100, X1: 120, Y1: 120})
	if tx0 != tx1 {
		t.Error("off-image rect should give empty range")
	}
}
