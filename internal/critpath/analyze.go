package critpath

import (
	"sort"

	"bgpvr/internal/stats"
	"bgpvr/internal/trace"
)

// eps absorbs float rounding when comparing timestamps: two events
// within a nanosecond are treated as simultaneous.
const eps = 1e-9

// Segment is one stretch of the critical path: time [Start, End] spent
// on one rank, attributed to the innermost activity covering it. Idle
// stretches (the rank had no open span) carry PhaseOther and the name
// "idle".
type Segment struct {
	Rank  int
	Phase trace.Phase
	Name  string
	Start float64
	End   float64
}

// Dur returns the segment's duration.
func (s Segment) Dur() float64 { return s.End - s.Start }

// Path is the extracted critical path of one frame.
type Path struct {
	// Segments in ascending time order; adjacent segments with the
	// same rank, phase, and name are merged.
	Segments []Segment
	// End is the frame's end time (the latest node end); Start is
	// where the backward walk terminated.
	Start, End float64
	// PhaseSec attributes the path's duration to phases; IdleSec is
	// the portion of PhaseSec[PhaseOther] spent with no span open.
	PhaseSec [trace.NumPhases]float64
	IdleSec  float64
	// Hops counts the cross-rank dependency edges the path traversed.
	Hops int
}

// Total returns the path duration End-Start.
func (p Path) Total() float64 { return p.End - p.Start }

// DominantPhase returns the phase holding the largest share of the
// path.
func (p Path) DominantPhase() trace.Phase {
	best := trace.PhaseOther
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		if p.PhaseSec[ph] > p.PhaseSec[best] {
			best = ph
		}
	}
	return best
}

// CriticalPath walks the graph backward from the frame's latest node
// end. At each point it finds the latest dependency edge into the
// current rank that actually blocked it — the sender arrived no
// earlier than the receiver started waiting — attributes the interval
// in between to the innermost covering spans, and jumps to the sender.
// With no blocking edge left, the walk attributes back to the rank's
// first activity and stops. The empty graph yields a zero Path.
func (g *Graph) CriticalPath() Path {
	var p Path
	if g == nil || g.lite {
		return p
	}
	g.prepare()
	if g.endRank < 0 {
		return p
	}
	rank, t := g.endRank, g.end
	p.End = g.end
	used := make([]bool, len(g.dSrcT))
	var rev []Segment // built backward in time
	// Every iteration either consumes at least one dep edge (marks it
	// used) or ends the walk, so the loop is bounded.
	for iter := 0; iter <= len(g.dSrcT)+1; iter++ {
		di := g.blockingDep(rank, t, used)
		if di < 0 {
			start := g.firstStart(rank, t)
			if start > t {
				start = t
			}
			g.attribute(&rev, &p, rank, start, t)
			p.Start = start
			break
		}
		d := g.dep(int32(di))
		used[di] = true
		cut := d.DstT
		if cut > t {
			cut = t
		}
		g.attribute(&rev, &p, rank, cut, t)
		p.Hops++
		next := d.SrcT
		if next > cut {
			next = cut // never move forward in time
		}
		if cut > next+eps {
			// The receiver's wait the edge unblocked: [SrcT, DstT] stays
			// on the path, attributed to the waiting span (a recv inside
			// a barrier reads as comm) or to idle skew.
			g.attribute(&rev, &p, rank, next, cut)
		}
		rank = d.Src
		t = next
	}
	// Reverse into ascending order, merging same-activity neighbors.
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		if s.End-s.Start <= 0 {
			continue
		}
		if n := len(p.Segments); n > 0 {
			last := &p.Segments[n-1]
			if last.Rank == s.Rank && last.Phase == s.Phase && last.Name == s.Name && s.Start <= last.End+eps {
				if s.End > last.End {
					last.End = s.End
				}
				continue
			}
		}
		p.Segments = append(p.Segments, s)
	}
	return p
}

// blockingDep returns the unused dependency edge into rank with the
// latest DstT <= t that actually blocked it, or -1. When several
// blocking edges share that DstT (a barrier release tied with fragment
// arrivals), the one whose sender finished last wins — it is the
// dependency that really gated the receiver. Self edges, non-blocking
// edges, and displaced ties are marked used so the scans stay linear
// over the whole walk.
func (g *Graph) blockingDep(rank int, t float64, used []bool) int {
	in := g.diIdx[g.diOff[rank]:g.diOff[rank+1]]
	pos := sort.Search(len(in), func(i int) bool { return g.dDstT[in[i]] > t+eps })
	best := -1
	for j := pos - 1; j >= 0; j-- {
		di := int(in[j])
		if used[di] {
			continue
		}
		if best >= 0 && g.dDstT[di] < g.dDstT[best]-eps {
			break // left the latest-DstT tier
		}
		if int(g.dSrc[di]) == rank {
			used[di] = true
			continue
		}
		if g.dSrcT[di] < g.waitStart(rank, g.dDstT[di])-eps {
			// The receiver was still busy when the sender arrived:
			// the edge did not block, so it cannot carry the path.
			used[di] = true
			continue
		}
		switch {
		case best < 0:
			best = di
		case g.dSrcT[di] > g.dSrcT[best]:
			used[best] = true
			best = di
		default:
			used[di] = true
		}
	}
	return best
}

// waitStart returns when rank started waiting for an edge satisfied at
// time t: the start of the innermost span covering t, or — if the rank
// was idle at t — the end of its previous activity (0 with none).
func (g *Graph) waitStart(rank int, t float64) float64 {
	if ni := g.covering(rank, t); ni >= 0 {
		return g.nStart[ni]
	}
	off := int(g.prOff[rank])
	idx := g.prIdx[off:g.prOff[rank+1]]
	pos := sort.Search(len(idx), func(i int) bool { return g.nStart[idx[i]] >= t })
	if pos == 0 {
		return 0
	}
	return g.meVals[off+pos-1]
}

// covering returns the innermost node on rank covering time t (Start
// strictly before t, End at or after t within eps), or -1. The
// backward scan is pruned by the prefix-max of node ends.
func (g *Graph) covering(rank int, t float64) int {
	off := int(g.prOff[rank])
	idx := g.prIdx[off:g.prOff[rank+1]]
	pos := sort.Search(len(idx), func(i int) bool { return g.nStart[idx[i]] >= t })
	for j := pos - 1; j >= 0; j-- {
		if g.meVals[off+j] < t-eps {
			break // nothing earlier reaches t
		}
		if g.nEnd[idx[j]] >= t-eps {
			return int(idx[j])
		}
	}
	return -1
}

// firstStart returns the start of rank's first activity, or fallback
// when the rank recorded none.
func (g *Graph) firstStart(rank int, fallback float64) float64 {
	idx := g.prIdx[g.prOff[rank]:g.prOff[rank+1]]
	if len(idx) == 0 {
		return fallback
	}
	return g.nStart[idx[0]]
}

// attribute splits [a, b] on rank into segments by the innermost
// covering spans, appending them to out in reverse time order and
// accumulating the path's phase totals.
func (g *Graph) attribute(out *[]Segment, p *Path, rank int, a, b float64) {
	t := b
	off := int(g.prOff[rank])
	idx := g.prIdx[off:g.prOff[rank+1]]
	guard := 2*len(idx) + 4
	for t > a+eps && guard > 0 {
		guard--
		if ni := g.covering(rank, t); ni >= 0 {
			ph := trace.Phase(g.nPhase[ni])
			lo := g.nStart[ni]
			if lo < a {
				lo = a
			}
			*out = append(*out, Segment{Rank: rank, Phase: ph, Name: g.names[g.nName[ni]], Start: lo, End: t})
			p.PhaseSec[ph] += t - lo
			t = lo
			continue
		}
		// Idle gap: back to the end of the last activity before t.
		lo := a
		pos := sort.Search(len(idx), func(i int) bool { return g.nStart[idx[i]] >= t })
		if pos > 0 && g.meVals[off+pos-1] > lo {
			lo = g.meVals[off+pos-1]
		}
		*out = append(*out, Segment{Rank: rank, Phase: trace.PhaseOther, Name: "idle", Start: lo, End: t})
		p.PhaseSec[trace.PhaseOther] += t - lo
		p.IdleSec += t - lo
		t = lo
	}
}

// BusyByPhase returns, for each phase, the per-rank busy seconds (the
// sum of non-nested span durations). Lite graphs return a copy of the
// streaming aggregates; both modes fold spans in insertion order, so
// the sums are bit-identical between them.
func (g *Graph) BusyByPhase() [trace.NumPhases][]float64 {
	var out [trace.NumPhases][]float64
	if g == nil {
		return out
	}
	for ph := range out {
		out[ph] = make([]float64, g.ranks)
	}
	if g.lite {
		for ph := range out {
			copy(out[ph], g.liteBusy[ph])
		}
		return out
	}
	for i := range g.nStart {
		if g.nNested[i] {
			continue
		}
		out[g.nPhase[i]][g.nRank[i]] += g.nEnd[i] - g.nStart[i]
	}
	return out
}

// Straggler is one of the most-loaded ranks of a phase.
type Straggler struct {
	Rank    int     `json:"rank"`
	BusySec float64 `json:"busy_sec"`
	VsMean  float64 `json:"vs_mean"` // busy / mean busy
}

// PhaseImbalance summarizes the per-rank busy-time distribution of one
// phase.
type PhaseImbalance struct {
	Phase      string      `json:"phase"`
	MeanSec    float64     `json:"mean_sec"`
	MaxSec     float64     `json:"max_sec"`
	MinSec     float64     `json:"min_sec"`
	P95Sec     float64     `json:"p95_sec"`
	Imbalance  float64     `json:"imbalance"` // max/mean, 1.0 = balanced
	CoV        float64     `json:"cov"`
	Gini       float64     `json:"gini"`
	SlackSec   float64     `json:"slack_sec"` // mean idle below the slowest rank: max - mean
	Stragglers []Straggler `json:"stragglers,omitempty"`
}

// WhatIf is the estimator's answer for one phase: the frame time if
// that phase's load were spread perfectly evenly, with everything else
// unchanged. The estimate replays the frame with the phase's slowest
// rank sped up to the mean, so EstimatedSec <= the actual frame time.
type WhatIf struct {
	Phase        string  `json:"phase"`
	EstimatedSec float64 `json:"estimated_sec"`
	SavedSec     float64 `json:"saved_sec"`
	Speedup      float64 `json:"speedup"`
}

// PathSegment is the JSON view of one critical-path segment.
type PathSegment struct {
	Rank     int     `json:"rank"`
	Phase    string  `json:"phase"`
	Name     string  `json:"name"`
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
}

// Analysis is the full critical-path and load-imbalance report of one
// frame, ready for JSON export.
type Analysis struct {
	Ranks        int                `json:"ranks"`
	Deps         int                `json:"deps"`
	DepsByKind   map[string]int     `json:"deps_by_kind,omitempty"`
	TotalSec     float64            `json:"total_sec"` // frame end-to-end time (graph end)
	PathSec      float64            `json:"path_sec"`  // critical-path duration
	IdleSec      float64            `json:"idle_sec"`
	Hops         int                `json:"hops"`
	Dominant     string             `json:"dominant_phase"`
	PathPhaseSec map[string]float64 `json:"path_phase_sec"`
	Path         []PathSegment      `json:"path,omitempty"`
	Phases       []PhaseImbalance   `json:"phases,omitempty"`
	WhatIf       []WhatIf           `json:"what_if,omitempty"`
}

// stagePhases are the phases the what-if estimator considers: the
// pipeline stages whose load a rebalancer could redistribute.
var stagePhases = []trace.Phase{trace.PhaseIO, trace.PhaseRender, trace.PhaseComposite}

// Analyze extracts the critical path and the per-phase imbalance
// metrics from the graph, keeping the topK most-loaded ranks of each
// phase as stragglers. A nil or empty graph yields a zero Analysis.
// Lite graphs skip the path walk (no per-node storage to walk) but
// produce the same imbalance, straggler, and what-if sections as the
// full graph, bit-for-bit.
func Analyze(g *Graph, topK int) *Analysis {
	a := &Analysis{
		Ranks:        g.Ranks(),
		Deps:         g.NumDeps(),
		PathPhaseSec: map[string]float64{},
	}
	if g == nil || (g.lite && g.endRank < 0) || (!g.lite && g.NumNodes() == 0) {
		return a
	}
	if a.Deps > 0 {
		a.DepsByKind = map[string]int{}
		if g.lite {
			for k, c := range g.liteDeps {
				if c > 0 {
					a.DepsByKind[DepKind(k).String()] = c
				}
			}
		} else {
			for _, k := range g.dKind {
				a.DepsByKind[DepKind(k).String()]++
			}
		}
	}

	a.TotalSec = g.End()
	if !g.lite {
		p := g.CriticalPath()
		a.PathSec = p.Total()
		a.IdleSec = p.IdleSec
		a.Hops = p.Hops
		a.Dominant = p.DominantPhase().String()
		for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
			if p.PhaseSec[ph] > 0 {
				a.PathPhaseSec[ph.String()] = p.PhaseSec[ph]
			}
		}
		for _, s := range p.Segments {
			a.Path = append(a.Path, PathSegment{
				Rank: s.Rank, Phase: s.Phase.String(), Name: s.Name,
				StartSec: s.Start, DurSec: s.Dur(),
			})
		}
	}

	busy := g.BusyByPhase()
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		xs := busy[ph]
		var s stats.Summary
		for _, x := range xs {
			s.Add(x)
		}
		if s.MaxV <= 0 {
			continue // phase not present
		}
		pi := PhaseImbalance{
			Phase:     ph.String(),
			MeanSec:   s.Mean(),
			MaxSec:    s.MaxV,
			MinSec:    s.MinV,
			P95Sec:    stats.Quantile(xs, 0.95),
			Imbalance: s.Imbalance(),
			CoV:       s.CoV(),
			Gini:      stats.Gini(xs),
			SlackSec:  s.MaxV - s.Mean(),
		}
		pi.Stragglers = stragglers(xs, s.Mean(), topK)
		a.Phases = append(a.Phases, pi)
	}

	for _, ph := range stagePhases {
		var s stats.Summary
		for _, x := range busy[ph] {
			s.Add(x)
		}
		if s.MaxV <= 0 {
			continue
		}
		saved := s.MaxV - s.Mean()
		est := a.TotalSec - saved
		if est < 0 {
			est = 0
		}
		w := WhatIf{Phase: ph.String(), EstimatedSec: est, SavedSec: saved, Speedup: 1}
		if est > 0 {
			w.Speedup = a.TotalSec / est
		}
		a.WhatIf = append(a.WhatIf, w)
	}
	return a
}

// stragglers returns the topK most-loaded ranks, most loaded first;
// ties break toward the lower rank.
func stragglers(xs []float64, mean float64, topK int) []Straggler {
	if topK <= 0 || len(xs) == 0 {
		return nil
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	if topK > len(idx) {
		topK = len(idx)
	}
	out := make([]Straggler, 0, topK)
	for _, r := range idx[:topK] {
		st := Straggler{Rank: r, BusySec: xs[r], VsMean: 1}
		if mean > 0 {
			st.VsMean = xs[r] / mean
		}
		out = append(out, st)
	}
	return out
}

// PhaseInfo returns the imbalance entry for the named phase, or nil.
func (a *Analysis) PhaseInfo(phase string) *PhaseImbalance {
	if a == nil {
		return nil
	}
	for i := range a.Phases {
		if a.Phases[i].Phase == phase {
			return &a.Phases[i]
		}
	}
	return nil
}

// WhatIfFor returns the what-if entry for the named phase, or nil.
func (a *Analysis) WhatIfFor(phase string) *WhatIf {
	if a == nil {
		return nil
	}
	for i := range a.WhatIf {
		if a.WhatIf[i].Phase == phase {
			return &a.WhatIf[i]
		}
	}
	return nil
}
