package critpath

import (
	"math"
	"strings"
	"testing"

	"bgpvr/internal/trace"
)

// twoRankFrame builds the canonical diamond: both ranks do 1s of I/O,
// rank 1 renders 3s while rank 0 renders 1s, a barrier releases both
// into a 1s composite. The path must run through rank 1's render.
func twoRankFrame() *Graph {
	g := NewGraph(2)
	g.AddNode(0, trace.PhaseIO, "io", 0, 1)
	g.AddNode(0, trace.PhaseRender, "render", 1, 1)
	g.AddNode(0, trace.PhaseComposite, "composite", 4, 1)
	g.AddNode(1, trace.PhaseIO, "io", 0, 1)
	g.AddNode(1, trace.PhaseRender, "render", 1, 3)
	g.AddNode(1, trace.PhaseComposite, "composite", 4, 1)
	// Barrier after render: slowest rank (1) releases rank 0 at t=4.
	g.AddDep(Dep{Kind: DepBarrier, Src: 1, Dst: 0, SrcT: 4, DstT: 4})
	g.AddDep(Dep{Kind: DepBarrier, Src: 1, Dst: 1, SrcT: 4, DstT: 4}) // self, ignored
	return g
}

func TestCriticalPathDiamond(t *testing.T) {
	g := twoRankFrame()
	p := g.CriticalPath()
	if p.End != 5 || p.Start != 0 || p.Total() != 5 {
		t.Fatalf("path bounds = [%v, %v]", p.Start, p.End)
	}
	if p.PhaseSec[trace.PhaseRender] != 3 {
		t.Errorf("render on path = %v, want 3 (must go through rank 1)", p.PhaseSec[trace.PhaseRender])
	}
	if p.PhaseSec[trace.PhaseIO] != 1 || p.PhaseSec[trace.PhaseComposite] != 1 {
		t.Errorf("io/composite on path = %v/%v, want 1/1",
			p.PhaseSec[trace.PhaseIO], p.PhaseSec[trace.PhaseComposite])
	}
	if p.DominantPhase() != trace.PhaseRender {
		t.Errorf("dominant = %v, want render", p.DominantPhase())
	}
	if p.IdleSec != 0 {
		t.Errorf("idle = %v, want 0", p.IdleSec)
	}
	if p.Hops != 1 {
		t.Errorf("hops = %d, want 1", p.Hops)
	}
	// Path covers the whole frame: sum of phase attribution == total.
	var sum float64
	for _, s := range p.PhaseSec {
		sum += s
	}
	if math.Abs(sum-p.Total()) > 1e-12 {
		t.Errorf("attribution sum %v != path total %v", sum, p.Total())
	}
	// Segments ascend and are contiguous.
	for i := 1; i < len(p.Segments); i++ {
		if p.Segments[i].Start < p.Segments[i-1].End-1e-12 {
			t.Errorf("segments overlap: %+v", p.Segments)
		}
	}
}

// TestNonBlockingEdgeIgnored pins the blocking rule: a message that
// arrived while the receiver was still busy (sender time before the
// receiver's innermost wait started) must not divert the path.
func TestNonBlockingEdgeIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(0, trace.PhaseRender, "work", 0, 5)
	g.addSpan(0, trace.PhaseComm, "recv", 3.9, 4, false) // recv wait nested in time inside work
	g.AddNode(1, trace.PhaseRender, "work", 0, 1)
	g.AddDep(Dep{Kind: DepMessage, Src: 1, Dst: 0, SrcT: 1, DstT: 4})
	p := g.CriticalPath()
	for _, s := range p.Segments {
		if s.Rank == 1 {
			t.Fatalf("path visited rank 1 via a non-blocking edge: %+v", p.Segments)
		}
	}
	if p.Total() != 5 {
		t.Errorf("path total = %v, want 5", p.Total())
	}
}

// TestBlockingEdgeFollowed is the converse: the receiver went idle
// before the sender finished, so the edge carries the path.
func TestBlockingEdgeFollowed(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(0, trace.PhaseRender, "work", 0, 1)
	g.AddNode(0, trace.PhaseComposite, "after", 4, 1)
	g.AddNode(1, trace.PhaseRender, "work", 0, 4)
	g.AddDep(Dep{Kind: DepMessage, Src: 1, Dst: 0, SrcT: 4, DstT: 4})
	p := g.CriticalPath()
	if p.PhaseSec[trace.PhaseRender] != 4 {
		t.Errorf("render attribution = %v, want 4 (rank 1's work)", p.PhaseSec[trace.PhaseRender])
	}
	if p.Hops != 1 {
		t.Errorf("hops = %d, want 1", p.Hops)
	}
}

// TestIdleAttribution: a gap with no spans and no deps shows up as
// idle time on the path.
func TestIdleAttribution(t *testing.T) {
	g := NewGraph(1)
	g.AddNode(0, trace.PhaseIO, "io", 0, 1)
	g.AddNode(0, trace.PhaseRender, "render", 3, 1)
	p := g.CriticalPath()
	if p.IdleSec != 2 {
		t.Errorf("idle = %v, want 2", p.IdleSec)
	}
	if p.Total() != 4 {
		t.Errorf("total = %v, want 4", p.Total())
	}
}

func TestAnalyzeDiamond(t *testing.T) {
	a := Analyze(twoRankFrame(), 3)
	if a.Ranks != 2 || a.TotalSec != 5 || a.PathSec != 5 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.Dominant != "render" {
		t.Errorf("dominant = %q", a.Dominant)
	}
	r := a.PhaseInfo("render")
	if r == nil {
		t.Fatal("no render phase entry")
	}
	if r.MeanSec != 2 || r.MaxSec != 3 || r.MinSec != 1 {
		t.Errorf("render busy stats = %+v", r)
	}
	if math.Abs(r.Imbalance-1.5) > 1e-12 {
		t.Errorf("imbalance = %v, want 1.5", r.Imbalance)
	}
	if len(r.Stragglers) != 2 || r.Stragglers[0].Rank != 1 || r.Stragglers[0].BusySec != 3 {
		t.Errorf("stragglers = %+v", r.Stragglers)
	}
	w := a.WhatIfFor("render")
	if w == nil {
		t.Fatal("no render what-if")
	}
	// Balancing render saves max-mean = 1s: 5s -> 4s.
	if math.Abs(w.EstimatedSec-4) > 1e-12 || math.Abs(w.SavedSec-1) > 1e-12 {
		t.Errorf("what-if = %+v", w)
	}
	if w.EstimatedSec > a.TotalSec {
		t.Error("what-if estimate exceeds actual frame time")
	}
	if a.DepsByKind["barrier"] != 2 {
		t.Errorf("deps by kind = %v", a.DepsByKind)
	}
	txt := a.Text()
	for _, want := range []string{"critical path", "phase imbalance", "what-if", "render"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
}

func TestFromTrace(t *testing.T) {
	tr := trace.NewVirtual(2)
	tr.Rank(0).Emit(trace.PhaseIO, "io", 0, 1)
	tr.Rank(0).EmitNested(trace.PhaseIO, "io/read", 0, 0.5)
	tr.Rank(1).Emit(trace.PhaseIO, "io", 0, 2)
	rec := NewRecorder(tr, 4)
	rec.Record(DepMessage, 1, 0, 2, 2, 128)
	g := FromTrace(tr, rec)
	if len(g.Nodes()) != 3 || len(g.Deps()) != 1 {
		t.Fatalf("nodes=%d deps=%d", len(g.Nodes()), len(g.Deps()))
	}
	// Nested span excluded from busy aggregation.
	busy := g.BusyByPhase()
	if busy[trace.PhaseIO][0] != 1 || busy[trace.PhaseIO][1] != 2 {
		t.Errorf("io busy = %v", busy[trace.PhaseIO])
	}
	if g.End() != 2 {
		t.Errorf("end = %v", g.End())
	}
}

func TestNilSafety(t *testing.T) {
	var g *Graph
	g.AddNode(0, trace.PhaseIO, "x", 0, 1)
	g.AddDep(Dep{})
	if g.Ranks() != 0 || g.End() != 0 || g.Nodes() != nil || g.Deps() != nil {
		t.Error("nil graph accessors not neutral")
	}
	if p := g.CriticalPath(); p.Total() != 0 || len(p.Segments) != 0 {
		t.Error("nil graph path not empty")
	}
	if a := Analyze(g, 3); a == nil || a.Ranks != 0 {
		t.Error("Analyze(nil) should return an empty analysis")
	}
	var r *Recorder
	r.Record(DepMessage, 0, 1, 0, 1, 0)
	if r.Len() != 0 || r.Deps() != nil || r.Now() != 0 {
		t.Error("nil recorder not neutral")
	}
	var a *Analysis
	if a.Text() != "" || a.PhaseInfo("render") != nil || a.WhatIfFor("render") != nil {
		t.Error("nil analysis accessors not neutral")
	}
}

// TestRecorderAllocFree pins the hot-path contract: recording within
// the capacity hint allocates nothing, and the nil recorder's no-op
// allocates nothing.
func TestRecorderAllocFree(t *testing.T) {
	rec := NewRecorder(nil, 1024)
	if n := testing.AllocsPerRun(500, func() {
		rec.Record(DepMessage, 0, 1, 1, 2, 64)
	}); n != 0 {
		t.Errorf("Record allocated %v per op within capacity hint", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		nilRec.Record(DepMessage, 0, 1, 1, 2, 64)
		_ = nilRec.Now()
	}); n != 0 {
		t.Errorf("nil recorder allocated %v per op", n)
	}
}

func TestDepKindString(t *testing.T) {
	want := map[DepKind]string{
		DepAuto: "auto", DepMessage: "message", DepBarrier: "barrier",
		DepCollective: "collective", DepAggregator: "aggregator",
		DepFragment: "fragment", NumDepKinds: "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// populate streams the same frame into any graph: varied per-rank
// loads, nested comm waits, and a mix of dep kinds. Used to compare
// full and lite graphs built from an identical insertion order.
func populate(g *Graph, ranks int) {
	for r := 0; r < ranks; r++ {
		load := float64(1+(r*7)%5) * 0.25
		g.AddNode(r, trace.PhaseIO, "read", 0, 1+float64(r%3)*0.125)
		g.AddNodeEnd(r, trace.PhaseRender, "render", 2, 2+load)
		g.addSpan(int32(r), trace.PhaseComm, "recv", 2.5, 2.75, true) // nested: excluded from busy
		g.AddNode(r, trace.PhaseComposite, "blend", 8, 0.5+float64(r%2)*0.0625)
	}
	for r := 1; r < ranks; r++ {
		g.AddDep(Dep{Kind: DepBarrier, Src: 0, Dst: r, SrcT: 7, DstT: 7.5})
		g.AddDep(Dep{Kind: DepFragment, Src: r - 1, Dst: r, SrcT: 8, DstT: 8.25, Bytes: 4096})
	}
}

// TestLiteMatchesFull pins the streaming-aggregation contract: a lite
// graph fed the identical insertion sequence reproduces the full
// graph's imbalance, straggler, what-if, and dep-census sections
// bit-for-bit, while storing no nodes; only the path sections differ
// (lite has none).
func TestLiteMatchesFull(t *testing.T) {
	const ranks = 13
	full, lite := NewGraph(ranks), NewGraphLite(ranks)
	populate(full, ranks)
	populate(lite, ranks)
	if lite.NumNodes() != 0 {
		t.Fatalf("lite graph stored %d nodes", lite.NumNodes())
	}
	if !lite.Lite() || full.Lite() {
		t.Fatal("Lite() mode flags wrong")
	}
	if lite.End() != full.End() {
		t.Fatalf("End: lite %v, full %v", lite.End(), full.End())
	}
	if lite.NumDeps() != full.NumDeps() {
		t.Fatalf("NumDeps: lite %d, full %d", lite.NumDeps(), full.NumDeps())
	}
	bf, bl := full.BusyByPhase(), lite.BusyByPhase()
	for ph := range bf {
		for r := range bf[ph] {
			if bf[ph][r] != bl[ph][r] {
				t.Fatalf("busy[%d][%d]: full %v, lite %v", ph, r, bf[ph][r], bl[ph][r])
			}
		}
	}
	af, al := Analyze(full, 4), Analyze(lite, 4)
	if al.Ranks != af.Ranks || al.Deps != af.Deps || al.TotalSec != af.TotalSec {
		t.Errorf("headline: lite %+v, full %+v", al, af)
	}
	for k, v := range af.DepsByKind {
		if al.DepsByKind[k] != v {
			t.Errorf("deps_by_kind[%s]: lite %d, full %d", k, al.DepsByKind[k], v)
		}
	}
	if len(al.Phases) != len(af.Phases) {
		t.Fatalf("phase sections: lite %d, full %d", len(al.Phases), len(af.Phases))
	}
	for i := range af.Phases {
		pf, pl := af.Phases[i], al.Phases[i]
		if pl.Phase != pf.Phase || pl.MeanSec != pf.MeanSec || pl.MaxSec != pf.MaxSec ||
			pl.MinSec != pf.MinSec || pl.CoV != pf.CoV || pl.Gini != pf.Gini ||
			pl.P95Sec != pf.P95Sec || pl.Imbalance != pf.Imbalance || pl.SlackSec != pf.SlackSec {
			t.Errorf("phase %s: lite %+v, full %+v", pf.Phase, pl, pf)
		}
		if len(pl.Stragglers) != len(pf.Stragglers) {
			t.Fatalf("phase %s stragglers: lite %d, full %d", pf.Phase, len(pl.Stragglers), len(pf.Stragglers))
		}
		for j := range pf.Stragglers {
			if pl.Stragglers[j] != pf.Stragglers[j] {
				t.Errorf("straggler %d: lite %+v, full %+v", j, pl.Stragglers[j], pf.Stragglers[j])
			}
		}
	}
	if len(al.WhatIf) != len(af.WhatIf) {
		t.Fatalf("what-if sections: lite %d, full %d", len(al.WhatIf), len(af.WhatIf))
	}
	for i := range af.WhatIf {
		if al.WhatIf[i] != af.WhatIf[i] {
			t.Errorf("what-if %d: lite %+v, full %+v", i, al.WhatIf[i], af.WhatIf[i])
		}
	}
	// Lite has no path sections; its CriticalPath is the zero path.
	if al.PathSec != 0 || len(al.Path) != 0 || al.Hops != 0 {
		t.Errorf("lite analysis grew path sections: %+v", al)
	}
	if p := lite.CriticalPath(); p.Total() != 0 || len(p.Segments) != 0 {
		t.Errorf("lite CriticalPath non-zero: %+v", p)
	}
}

// TestNodesDepsAreCopies pins the materializing accessor contract:
// mutating a returned slice must not corrupt the graph.
func TestNodesDepsAreCopies(t *testing.T) {
	g := twoRankFrame()
	n0, d0 := g.Nodes()[0], g.Deps()[0]
	g.Nodes()[0] = Node{Rank: 1, Name: "clobbered"}
	g.Deps()[0] = Dep{Src: 1, Dst: 1}
	if got := g.Nodes()[0]; got != n0 {
		t.Errorf("Nodes()[0] changed after caller mutation: %+v", got)
	}
	if got := g.Deps()[0]; got != d0 {
		t.Errorf("Deps()[0] changed after caller mutation: %+v", got)
	}
	if g.NumNodes() != 6 || g.NumDeps() != 2 {
		t.Errorf("counts = %d nodes, %d deps", g.NumNodes(), g.NumDeps())
	}
}

// TestNameInterning checks repeated span names share one table entry.
func TestNameInterning(t *testing.T) {
	g := NewGraph(4)
	for r := 0; r < 4; r++ {
		for i := 0; i < 50; i++ {
			g.AddNode(r, trace.PhaseRender, "render", float64(i), 0.5)
		}
	}
	if len(g.names) != 1 {
		t.Errorf("interned %d names, want 1", len(g.names))
	}
	if g.Nodes()[199].Name != "render" {
		t.Errorf("interned name lost: %q", g.Nodes()[199].Name)
	}
}
