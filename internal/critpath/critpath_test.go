package critpath

import (
	"math"
	"strings"
	"testing"

	"bgpvr/internal/trace"
)

// twoRankFrame builds the canonical diamond: both ranks do 1s of I/O,
// rank 1 renders 3s while rank 0 renders 1s, a barrier releases both
// into a 1s composite. The path must run through rank 1's render.
func twoRankFrame() *Graph {
	g := NewGraph(2)
	g.AddNode(0, trace.PhaseIO, "io", 0, 1)
	g.AddNode(0, trace.PhaseRender, "render", 1, 1)
	g.AddNode(0, trace.PhaseComposite, "composite", 4, 1)
	g.AddNode(1, trace.PhaseIO, "io", 0, 1)
	g.AddNode(1, trace.PhaseRender, "render", 1, 3)
	g.AddNode(1, trace.PhaseComposite, "composite", 4, 1)
	// Barrier after render: slowest rank (1) releases rank 0 at t=4.
	g.AddDep(Dep{Kind: DepBarrier, Src: 1, Dst: 0, SrcT: 4, DstT: 4})
	g.AddDep(Dep{Kind: DepBarrier, Src: 1, Dst: 1, SrcT: 4, DstT: 4}) // self, ignored
	return g
}

func TestCriticalPathDiamond(t *testing.T) {
	g := twoRankFrame()
	p := g.CriticalPath()
	if p.End != 5 || p.Start != 0 || p.Total() != 5 {
		t.Fatalf("path bounds = [%v, %v]", p.Start, p.End)
	}
	if p.PhaseSec[trace.PhaseRender] != 3 {
		t.Errorf("render on path = %v, want 3 (must go through rank 1)", p.PhaseSec[trace.PhaseRender])
	}
	if p.PhaseSec[trace.PhaseIO] != 1 || p.PhaseSec[trace.PhaseComposite] != 1 {
		t.Errorf("io/composite on path = %v/%v, want 1/1",
			p.PhaseSec[trace.PhaseIO], p.PhaseSec[trace.PhaseComposite])
	}
	if p.DominantPhase() != trace.PhaseRender {
		t.Errorf("dominant = %v, want render", p.DominantPhase())
	}
	if p.IdleSec != 0 {
		t.Errorf("idle = %v, want 0", p.IdleSec)
	}
	if p.Hops != 1 {
		t.Errorf("hops = %d, want 1", p.Hops)
	}
	// Path covers the whole frame: sum of phase attribution == total.
	var sum float64
	for _, s := range p.PhaseSec {
		sum += s
	}
	if math.Abs(sum-p.Total()) > 1e-12 {
		t.Errorf("attribution sum %v != path total %v", sum, p.Total())
	}
	// Segments ascend and are contiguous.
	for i := 1; i < len(p.Segments); i++ {
		if p.Segments[i].Start < p.Segments[i-1].End-1e-12 {
			t.Errorf("segments overlap: %+v", p.Segments)
		}
	}
}

// TestNonBlockingEdgeIgnored pins the blocking rule: a message that
// arrived while the receiver was still busy (sender time before the
// receiver's innermost wait started) must not divert the path.
func TestNonBlockingEdgeIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(0, trace.PhaseRender, "work", 0, 5)
	n := Node{Rank: 0, Phase: trace.PhaseComm, Name: "recv", Start: 3.9, End: 4, Nested: false}
	g.nodes = append(g.nodes, n) // recv wait nested in time inside work
	g.AddNode(1, trace.PhaseRender, "work", 0, 1)
	g.AddDep(Dep{Kind: DepMessage, Src: 1, Dst: 0, SrcT: 1, DstT: 4})
	p := g.CriticalPath()
	for _, s := range p.Segments {
		if s.Rank == 1 {
			t.Fatalf("path visited rank 1 via a non-blocking edge: %+v", p.Segments)
		}
	}
	if p.Total() != 5 {
		t.Errorf("path total = %v, want 5", p.Total())
	}
}

// TestBlockingEdgeFollowed is the converse: the receiver went idle
// before the sender finished, so the edge carries the path.
func TestBlockingEdgeFollowed(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(0, trace.PhaseRender, "work", 0, 1)
	g.AddNode(0, trace.PhaseComposite, "after", 4, 1)
	g.AddNode(1, trace.PhaseRender, "work", 0, 4)
	g.AddDep(Dep{Kind: DepMessage, Src: 1, Dst: 0, SrcT: 4, DstT: 4})
	p := g.CriticalPath()
	if p.PhaseSec[trace.PhaseRender] != 4 {
		t.Errorf("render attribution = %v, want 4 (rank 1's work)", p.PhaseSec[trace.PhaseRender])
	}
	if p.Hops != 1 {
		t.Errorf("hops = %d, want 1", p.Hops)
	}
}

// TestIdleAttribution: a gap with no spans and no deps shows up as
// idle time on the path.
func TestIdleAttribution(t *testing.T) {
	g := NewGraph(1)
	g.AddNode(0, trace.PhaseIO, "io", 0, 1)
	g.AddNode(0, trace.PhaseRender, "render", 3, 1)
	p := g.CriticalPath()
	if p.IdleSec != 2 {
		t.Errorf("idle = %v, want 2", p.IdleSec)
	}
	if p.Total() != 4 {
		t.Errorf("total = %v, want 4", p.Total())
	}
}

func TestAnalyzeDiamond(t *testing.T) {
	a := Analyze(twoRankFrame(), 3)
	if a.Ranks != 2 || a.TotalSec != 5 || a.PathSec != 5 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.Dominant != "render" {
		t.Errorf("dominant = %q", a.Dominant)
	}
	r := a.PhaseInfo("render")
	if r == nil {
		t.Fatal("no render phase entry")
	}
	if r.MeanSec != 2 || r.MaxSec != 3 || r.MinSec != 1 {
		t.Errorf("render busy stats = %+v", r)
	}
	if math.Abs(r.Imbalance-1.5) > 1e-12 {
		t.Errorf("imbalance = %v, want 1.5", r.Imbalance)
	}
	if len(r.Stragglers) != 2 || r.Stragglers[0].Rank != 1 || r.Stragglers[0].BusySec != 3 {
		t.Errorf("stragglers = %+v", r.Stragglers)
	}
	w := a.WhatIfFor("render")
	if w == nil {
		t.Fatal("no render what-if")
	}
	// Balancing render saves max-mean = 1s: 5s -> 4s.
	if math.Abs(w.EstimatedSec-4) > 1e-12 || math.Abs(w.SavedSec-1) > 1e-12 {
		t.Errorf("what-if = %+v", w)
	}
	if w.EstimatedSec > a.TotalSec {
		t.Error("what-if estimate exceeds actual frame time")
	}
	if a.DepsByKind["barrier"] != 2 {
		t.Errorf("deps by kind = %v", a.DepsByKind)
	}
	txt := a.Text()
	for _, want := range []string{"critical path", "phase imbalance", "what-if", "render"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
}

func TestFromTrace(t *testing.T) {
	tr := trace.NewVirtual(2)
	tr.Rank(0).Emit(trace.PhaseIO, "io", 0, 1)
	tr.Rank(0).EmitNested(trace.PhaseIO, "io/read", 0, 0.5)
	tr.Rank(1).Emit(trace.PhaseIO, "io", 0, 2)
	rec := NewRecorder(tr, 4)
	rec.Record(DepMessage, 1, 0, 2, 2, 128)
	g := FromTrace(tr, rec)
	if len(g.Nodes()) != 3 || len(g.Deps()) != 1 {
		t.Fatalf("nodes=%d deps=%d", len(g.Nodes()), len(g.Deps()))
	}
	// Nested span excluded from busy aggregation.
	busy := g.BusyByPhase()
	if busy[trace.PhaseIO][0] != 1 || busy[trace.PhaseIO][1] != 2 {
		t.Errorf("io busy = %v", busy[trace.PhaseIO])
	}
	if g.End() != 2 {
		t.Errorf("end = %v", g.End())
	}
}

func TestNilSafety(t *testing.T) {
	var g *Graph
	g.AddNode(0, trace.PhaseIO, "x", 0, 1)
	g.AddDep(Dep{})
	if g.Ranks() != 0 || g.End() != 0 || g.Nodes() != nil || g.Deps() != nil {
		t.Error("nil graph accessors not neutral")
	}
	if p := g.CriticalPath(); p.Total() != 0 || len(p.Segments) != 0 {
		t.Error("nil graph path not empty")
	}
	if a := Analyze(g, 3); a == nil || a.Ranks != 0 {
		t.Error("Analyze(nil) should return an empty analysis")
	}
	var r *Recorder
	r.Record(DepMessage, 0, 1, 0, 1, 0)
	if r.Len() != 0 || r.Deps() != nil || r.Now() != 0 {
		t.Error("nil recorder not neutral")
	}
	var a *Analysis
	if a.Text() != "" || a.PhaseInfo("render") != nil || a.WhatIfFor("render") != nil {
		t.Error("nil analysis accessors not neutral")
	}
}

// TestRecorderAllocFree pins the hot-path contract: recording within
// the capacity hint allocates nothing, and the nil recorder's no-op
// allocates nothing.
func TestRecorderAllocFree(t *testing.T) {
	rec := NewRecorder(nil, 1024)
	if n := testing.AllocsPerRun(500, func() {
		rec.Record(DepMessage, 0, 1, 1, 2, 64)
	}); n != 0 {
		t.Errorf("Record allocated %v per op within capacity hint", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		nilRec.Record(DepMessage, 0, 1, 1, 2, 64)
		_ = nilRec.Now()
	}); n != 0 {
		t.Errorf("nil recorder allocated %v per op", n)
	}
}

func TestDepKindString(t *testing.T) {
	want := map[DepKind]string{
		DepAuto: "auto", DepMessage: "message", DepBarrier: "barrier",
		DepCollective: "collective", DepAggregator: "aggregator",
		DepFragment: "fragment", NumDepKinds: "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
