// Package critpath explains which ranks and which dependencies set a
// frame's end-to-end time. It assembles a causal event graph from two
// inputs: per-rank activity spans (package trace) and explicit
// dependency edges recorded at the points where ranks synchronize —
// point-to-point send→recv matches in the comm runtime, collective
// barriers, the MPI-IO aggregator exchange, and the compositing
// fragment exchange. Both pipelines feed it: real mode records edges
// live through a Recorder attached to the comm.World, and model mode
// lays the virtual frame out as per-rank nodes directly.
//
// On top of the graph, Analyze extracts the critical path with
// per-phase attribution ("the frame spends 78% of its path in render
// on rank 12"), per-phase slack and load-imbalance metrics (max/mean,
// coefficient of variation, Gini over per-rank busy time), straggler
// top-k reports, and a what-if estimator that bounds the speedup
// available from perfectly balancing one phase.
//
// # Overhead discipline
//
// The recording entry points follow the contract of packages trace and
// telemetry: every method is a no-op on the nil receiver, the hooks
// allocate nothing when recording is off (pinned by AllocsPerRun
// tests), and the modeled times with recording on are bit-identical to
// the times with it off (graph assembly is purely observational).
package critpath

import (
	"sort"
	"sync"

	"bgpvr/internal/trace"
)

// DepKind classifies one recorded dependency edge by the
// synchronization point that produced it.
type DepKind uint8

// The dependency kinds. DepAuto is the comm runtime's "classify by
// message tag" sentinel; it is never stored in a graph.
const (
	DepAuto DepKind = iota
	// DepMessage is a plain point-to-point send→recv match.
	DepMessage
	// DepBarrier is a collective barrier round (dissemination signal).
	DepBarrier
	// DepCollective is an internal exchange of a collective operation
	// (bcast, reduce, gather, all-to-all, scan).
	DepCollective
	// DepAggregator is the MPI-IO two-phase exchange with an I/O
	// aggregator (request scatter or data reply).
	DepAggregator
	// DepFragment is a compositing fragment or tile exchange.
	DepFragment
	NumDepKinds // count sentinel, not a kind
)

func (k DepKind) String() string {
	switch k {
	case DepAuto:
		return "auto"
	case DepMessage:
		return "message"
	case DepBarrier:
		return "barrier"
	case DepCollective:
		return "collective"
	case DepAggregator:
		return "aggregator"
	case DepFragment:
		return "fragment"
	}
	return "unknown"
}

// Dep is one causal dependency edge: rank Dst could not pass time DstT
// until rank Src reached time SrcT. SrcT <= DstT in every
// happens-before recording.
type Dep struct {
	Kind       DepKind
	Src, Dst   int
	SrcT, DstT float64 // seconds since the run's epoch
	Bytes      int64
}

// Recorder collects dependency edges while a real-mode run executes.
// The nil *Recorder is a valid no-op: instrumented paths carry a
// possibly-nil handle and pay one predictable branch when recording is
// off. Record is safe for concurrent use.
type Recorder struct {
	clock func() float64

	mu   sync.Mutex
	deps []Dep
}

// NewRecorder creates a recorder whose timestamps come from the given
// tracer's clock (seconds since the tracer's epoch, so edges line up
// with the tracer's spans). capHint pre-sizes the edge log; recording
// within the hint allocates nothing.
func NewRecorder(tr *trace.Tracer, capHint int) *Recorder {
	if capHint < 0 {
		capHint = 0
	}
	return &Recorder{clock: tr.Now, deps: make([]Dep, 0, capHint)}
}

// Now returns the recorder's clock reading (0 on the nil recorder).
func (r *Recorder) Now() float64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Record appends one dependency edge. No-op on the nil receiver;
// allocation-free within the capacity hint.
func (r *Recorder) Record(kind DepKind, src, dst int, srcT, dstT float64, bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.deps = append(r.deps, Dep{Kind: kind, Src: src, Dst: dst, SrcT: srcT, DstT: dstT, Bytes: bytes})
	r.mu.Unlock()
}

// Len returns the number of recorded edges (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.deps)
}

// Deps returns a copy of the recorded edges (nil on the nil recorder).
func (r *Recorder) Deps() []Dep {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Dep, len(r.deps))
	copy(out, r.deps)
	return out
}

// Node is one activity interval on one rank's timeline. Nested marks
// a span recorded inside another span of the same phase on the same
// rank: the path walk uses nested nodes (they are the innermost wait
// intervals), but busy-time aggregation skips them so a phase is not
// double-counted.
type Node struct {
	Rank   int
	Phase  trace.Phase
	Name   string
	Start  float64
	End    float64
	Nested bool
}

// Dur returns the node's duration.
func (n Node) Dur() float64 { return n.End - n.Start }

// Graph is the assembled causal event graph of one frame: per-rank
// activity nodes plus the dependency edges between ranks. The nil
// *Graph is a valid no-op sink, so model-mode graph population costs
// nothing when no graph is attached.
type Graph struct {
	ranks int
	nodes []Node
	deps  []Dep

	// Built lazily by prepare():
	prepared bool
	perRank  [][]int     // node indices per rank, ordered by start
	maxEnd   [][]float64 // prefix max of node ends along perRank
	depsIn   [][]int     // dep indices per dst rank, ordered by DstT
	end      float64
	endRank  int
}

// NewGraph creates an empty graph over the given number of ranks.
func NewGraph(ranks int) *Graph {
	if ranks < 0 {
		ranks = 0
	}
	return &Graph{ranks: ranks, endRank: -1}
}

// Ranks returns the rank count (0 on nil).
func (g *Graph) Ranks() int {
	if g == nil {
		return 0
	}
	return g.ranks
}

// AddNode appends one activity interval. No-op on the nil receiver or
// for out-of-range ranks and non-positive durations.
func (g *Graph) AddNode(rank int, phase trace.Phase, name string, start, dur float64) {
	if g == nil || rank < 0 || rank >= g.ranks || dur <= 0 {
		return
	}
	g.nodes = append(g.nodes, Node{Rank: rank, Phase: phase, Name: name, Start: start, End: start + dur})
	g.prepared = false
}

// AddNodeEnd is AddNode with an explicit end time, for callers that
// must preserve a cumulative timeline bit-exactly (model mode sums
// stage times in a fixed order; recomputing start+dur would reorder
// the float additions).
func (g *Graph) AddNodeEnd(rank int, phase trace.Phase, name string, start, end float64) {
	if g == nil || rank < 0 || rank >= g.ranks || end <= start {
		return
	}
	g.nodes = append(g.nodes, Node{Rank: rank, Phase: phase, Name: name, Start: start, End: end})
	g.prepared = false
}

// AddDep appends one dependency edge. No-op on nil or for edges with
// out-of-range endpoints.
func (g *Graph) AddDep(d Dep) {
	if g == nil || d.Src < 0 || d.Src >= g.ranks || d.Dst < 0 || d.Dst >= g.ranks {
		return
	}
	g.deps = append(g.deps, d)
	g.prepared = false
}

// Nodes returns the graph's activity nodes (shared slice; do not
// modify).
func (g *Graph) Nodes() []Node {
	if g == nil {
		return nil
	}
	return g.nodes
}

// Deps returns the graph's dependency edges (shared slice; do not
// modify).
func (g *Graph) Deps() []Dep {
	if g == nil {
		return nil
	}
	return g.deps
}

// End returns the frame's end time: the maximum node end (0 when
// empty).
func (g *Graph) End() float64 {
	if g == nil {
		return 0
	}
	g.prepare()
	return g.end
}

// FromTrace assembles a real-mode graph: every recorded span becomes a
// node (nested same-phase spans included — they are the innermost wait
// intervals the path walk attributes to), and the recorder's edges
// become the cross-rank dependencies.
func FromTrace(tr *trace.Tracer, rec *Recorder) *Graph {
	g := NewGraph(tr.Size())
	for _, e := range tr.Events() {
		if e.Rank < 0 || e.Rank >= g.ranks || e.Dur <= 0 {
			continue
		}
		g.nodes = append(g.nodes, Node{
			Rank: e.Rank, Phase: e.Phase, Name: e.Name,
			Start: e.Start, End: e.Start + e.Dur, Nested: e.Nested,
		})
	}
	g.prepared = false
	for _, d := range rec.Deps() {
		g.AddDep(d)
	}
	return g
}

// prepare builds the per-rank indices the analyses walk.
func (g *Graph) prepare() {
	if g == nil || g.prepared {
		return
	}
	g.perRank = make([][]int, g.ranks)
	g.depsIn = make([][]int, g.ranks)
	g.end, g.endRank = 0, -1
	for i, n := range g.nodes {
		g.perRank[n.Rank] = append(g.perRank[n.Rank], i)
		if n.End > g.end || g.endRank < 0 {
			g.end, g.endRank = n.End, n.Rank
		}
	}
	g.maxEnd = make([][]float64, g.ranks)
	for r := range g.perRank {
		idx := g.perRank[r]
		sortByKey(idx, func(i int) float64 { return g.nodes[i].Start })
		me := make([]float64, len(idx))
		for j, ni := range idx {
			me[j] = g.nodes[ni].End
			if j > 0 && me[j-1] > me[j] {
				me[j] = me[j-1]
			}
		}
		g.maxEnd[r] = me
	}
	for i, d := range g.deps {
		g.depsIn[d.Dst] = append(g.depsIn[d.Dst], i)
	}
	for r := range g.depsIn {
		idx := g.depsIn[r]
		sortByKey(idx, func(i int) float64 { return g.deps[i].DstT })
	}
	g.prepared = true
}

// sortByKey sorts idx ascending by key, stably, so same-timestamp
// entries keep their recording order.
func sortByKey(idx []int, key func(int) float64) {
	sort.SliceStable(idx, func(a, b int) bool { return key(idx[a]) < key(idx[b]) })
}
