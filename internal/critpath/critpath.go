// Package critpath explains which ranks and which dependencies set a
// frame's end-to-end time. It assembles a causal event graph from two
// inputs: per-rank activity spans (package trace) and explicit
// dependency edges recorded at the points where ranks synchronize —
// point-to-point send→recv matches in the comm runtime, collective
// barriers, the MPI-IO aggregator exchange, and the compositing
// fragment exchange. Both pipelines feed it: real mode records edges
// live through a Recorder attached to the comm.World, and model mode
// lays the virtual frame out as per-rank nodes directly.
//
// On top of the graph, Analyze extracts the critical path with
// per-phase attribution ("the frame spends 78% of its path in render
// on rank 12"), per-phase slack and load-imbalance metrics (max/mean,
// coefficient of variation, Gini over per-rank busy time), straggler
// top-k reports, and a what-if estimator that bounds the speedup
// available from perfectly balancing one phase.
//
// # Overhead discipline
//
// The recording entry points follow the contract of packages trace and
// telemetry: every method is a no-op on the nil receiver, the hooks
// allocate nothing when recording is off (pinned by AllocsPerRun
// tests), and the modeled times with recording on are bit-identical to
// the times with it off (graph assembly is purely observational).
package critpath

import (
	"sort"
	"sync"

	"bgpvr/internal/trace"
)

// DepKind classifies one recorded dependency edge by the
// synchronization point that produced it.
type DepKind uint8

// The dependency kinds. DepAuto is the comm runtime's "classify by
// message tag" sentinel; it is never stored in a graph.
const (
	DepAuto DepKind = iota
	// DepMessage is a plain point-to-point send→recv match.
	DepMessage
	// DepBarrier is a collective barrier round (dissemination signal).
	DepBarrier
	// DepCollective is an internal exchange of a collective operation
	// (bcast, reduce, gather, all-to-all, scan).
	DepCollective
	// DepAggregator is the MPI-IO two-phase exchange with an I/O
	// aggregator (request scatter or data reply).
	DepAggregator
	// DepFragment is a compositing fragment or tile exchange.
	DepFragment
	NumDepKinds // count sentinel, not a kind
)

func (k DepKind) String() string {
	switch k {
	case DepAuto:
		return "auto"
	case DepMessage:
		return "message"
	case DepBarrier:
		return "barrier"
	case DepCollective:
		return "collective"
	case DepAggregator:
		return "aggregator"
	case DepFragment:
		return "fragment"
	}
	return "unknown"
}

// Dep is one causal dependency edge: rank Dst could not pass time DstT
// until rank Src reached time SrcT. SrcT <= DstT in every
// happens-before recording.
type Dep struct {
	Kind       DepKind
	Src, Dst   int
	SrcT, DstT float64 // seconds since the run's epoch
	Bytes      int64
}

// Recorder collects dependency edges while a real-mode run executes.
// The nil *Recorder is a valid no-op: instrumented paths carry a
// possibly-nil handle and pay one predictable branch when recording is
// off. Record is safe for concurrent use.
type Recorder struct {
	clock func() float64

	mu   sync.Mutex
	deps []Dep
}

// NewRecorder creates a recorder whose timestamps come from the given
// tracer's clock (seconds since the tracer's epoch, so edges line up
// with the tracer's spans). capHint pre-sizes the edge log; recording
// within the hint allocates nothing.
func NewRecorder(tr *trace.Tracer, capHint int) *Recorder {
	if capHint < 0 {
		capHint = 0
	}
	return &Recorder{clock: tr.Now, deps: make([]Dep, 0, capHint)}
}

// Now returns the recorder's clock reading (0 on the nil recorder).
func (r *Recorder) Now() float64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Record appends one dependency edge. No-op on the nil receiver;
// allocation-free within the capacity hint.
func (r *Recorder) Record(kind DepKind, src, dst int, srcT, dstT float64, bytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.deps = append(r.deps, Dep{Kind: kind, Src: src, Dst: dst, SrcT: srcT, DstT: dstT, Bytes: bytes})
	r.mu.Unlock()
}

// Len returns the number of recorded edges (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.deps)
}

// Deps returns a copy of the recorded edges (nil on the nil recorder).
func (r *Recorder) Deps() []Dep {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Dep, len(r.deps))
	copy(out, r.deps)
	return out
}

// Node is one activity interval on one rank's timeline. Nested marks
// a span recorded inside another span of the same phase on the same
// rank: the path walk uses nested nodes (they are the innermost wait
// intervals), but busy-time aggregation skips them so a phase is not
// double-counted.
type Node struct {
	Rank   int
	Phase  trace.Phase
	Name   string
	Start  float64
	End    float64
	Nested bool
}

// Dur returns the node's duration.
func (n Node) Dur() float64 { return n.End - n.Start }

// Graph is the assembled causal event graph of one frame: per-rank
// activity nodes plus the dependency edges between ranks. The nil
// *Graph is a valid no-op sink, so model-mode graph population costs
// nothing when no graph is attached.
//
// Storage is column-oriented with interned span names: a node costs
// ~24 bytes and an edge ~33 instead of the ~48 each of the
// struct-of-everything layout, and the prepared per-rank indices are
// flat int32 CSR arrays instead of per-rank slices. At 100K+ ranks a
// model-mode frame graph holds tens of millions of fragment edges, so
// halving the footprint is what keeps -critpath usable there; the
// aggregate-only variant (NewGraphLite) drops per-node storage
// entirely for runs past what even the compact graph should hold.
type Graph struct {
	ranks int

	// Node columns; names are interned into names/nameID.
	nRank   []int32
	nPhase  []uint8
	nName   []uint16
	nStart  []float64
	nEnd    []float64
	nNested []bool
	names   []string
	nameID  map[string]uint16

	// Dep columns.
	dKind  []uint8
	dSrc   []int32
	dDst   []int32
	dSrcT  []float64
	dDstT  []float64
	dBytes []int64

	// Lite (aggregate-only) mode: spans fold straight into per-rank
	// busy sums and edges into per-kind counts; no columns are kept.
	lite     bool
	liteBusy [trace.NumPhases][]float64
	liteDeps [NumDepKinds]int

	// Built lazily by prepare():
	prepared bool
	prIdx    []int32   // node indices grouped by rank, ordered by start
	prOff    []int32   // rank r's indices are prIdx[prOff[r]:prOff[r+1]]
	meVals   []float64 // prefix max of node ends aligned with prIdx
	diIdx    []int32   // dep indices grouped by dst rank, ordered by DstT
	diOff    []int32
	end      float64
	endRank  int
}

// NewGraph creates an empty graph over the given number of ranks.
func NewGraph(ranks int) *Graph {
	if ranks < 0 {
		ranks = 0
	}
	return &Graph{ranks: ranks, endRank: -1}
}

// NewGraphLite creates an aggregate-only graph: AddNode folds spans
// into per-rank busy time and the frame end, AddDep counts edges by
// kind, and nothing per-node is retained. Analyze still produces the
// imbalance, straggler, and what-if sections (bit-identical to the
// full graph's, the same sums in the same order) but no critical path
// — the streaming trade that keeps -critpath alive at 100K+ ranks.
func NewGraphLite(ranks int) *Graph {
	g := NewGraph(ranks)
	g.lite = true
	for ph := range g.liteBusy {
		g.liteBusy[ph] = make([]float64, g.ranks)
	}
	return g
}

// Lite reports whether the graph is aggregate-only (false on nil).
func (g *Graph) Lite() bool { return g != nil && g.lite }

// NumNodes returns the stored node count (0 on nil or lite graphs).
func (g *Graph) NumNodes() int {
	if g == nil {
		return 0
	}
	return len(g.nStart)
}

// NumDeps returns the dependency edge count (lite graphs report the
// counted total).
func (g *Graph) NumDeps() int {
	if g == nil {
		return 0
	}
	if g.lite {
		n := 0
		for _, c := range g.liteDeps {
			n += c
		}
		return n
	}
	return len(g.dSrcT)
}

// node materializes node i from the columns.
func (g *Graph) node(i int32) Node {
	return Node{
		Rank: int(g.nRank[i]), Phase: trace.Phase(g.nPhase[i]), Name: g.names[g.nName[i]],
		Start: g.nStart[i], End: g.nEnd[i], Nested: g.nNested[i],
	}
}

// dep materializes edge i from the columns.
func (g *Graph) dep(i int32) Dep {
	return Dep{
		Kind: DepKind(g.dKind[i]), Src: int(g.dSrc[i]), Dst: int(g.dDst[i]),
		SrcT: g.dSrcT[i], DstT: g.dDstT[i], Bytes: g.dBytes[i],
	}
}

// intern returns the id of name, registering it on first use. The id
// space is 16-bit; a graph with more distinct names than that folds
// the overflow onto one catch-all id (span names are a small fixed
// vocabulary in both pipelines, so this is a guard, not a path).
func (g *Graph) intern(name string) uint16 {
	if g.nameID == nil {
		g.nameID = make(map[string]uint16, 16)
	}
	if id, ok := g.nameID[name]; ok {
		return id
	}
	if len(g.names) >= 1<<16 {
		return g.nameID["…"]
	}
	id := uint16(len(g.names))
	g.names = append(g.names, name)
	g.nameID[name] = id
	return id
}

// Ranks returns the rank count (0 on nil).
func (g *Graph) Ranks() int {
	if g == nil {
		return 0
	}
	return g.ranks
}

// addSpan is the single append point for both modes. Lite graphs fold
// the span straight into the per-rank busy sums (skipping nested spans
// exactly as BusyByPhase does) and track the frame end incrementally
// in insertion order, so the aggregates match the full graph's
// bit-for-bit.
func (g *Graph) addSpan(rank int32, phase trace.Phase, name string, start, end float64, nested bool) {
	if g.lite {
		if !nested && int(phase) < len(g.liteBusy) {
			g.liteBusy[phase][rank] += end - start
		}
		if end > g.end || g.endRank < 0 {
			g.end, g.endRank = end, int(rank)
		}
		return
	}
	g.nRank = append(g.nRank, rank)
	g.nPhase = append(g.nPhase, uint8(phase))
	g.nName = append(g.nName, g.intern(name))
	g.nStart = append(g.nStart, start)
	g.nEnd = append(g.nEnd, end)
	g.nNested = append(g.nNested, nested)
	g.prepared = false
}

// AddNode appends one activity interval. No-op on the nil receiver or
// for out-of-range ranks and non-positive durations.
func (g *Graph) AddNode(rank int, phase trace.Phase, name string, start, dur float64) {
	if g == nil || rank < 0 || rank >= g.ranks || dur <= 0 {
		return
	}
	g.addSpan(int32(rank), phase, name, start, start+dur, false)
}

// AddNodeEnd is AddNode with an explicit end time, for callers that
// must preserve a cumulative timeline bit-exactly (model mode sums
// stage times in a fixed order; recomputing start+dur would reorder
// the float additions).
func (g *Graph) AddNodeEnd(rank int, phase trace.Phase, name string, start, end float64) {
	if g == nil || rank < 0 || rank >= g.ranks || end <= start {
		return
	}
	g.addSpan(int32(rank), phase, name, start, end, false)
}

// AddDep appends one dependency edge. No-op on nil or for edges with
// out-of-range endpoints.
func (g *Graph) AddDep(d Dep) {
	if g == nil || d.Src < 0 || d.Src >= g.ranks || d.Dst < 0 || d.Dst >= g.ranks {
		return
	}
	if g.lite {
		if d.Kind < NumDepKinds {
			g.liteDeps[d.Kind]++
		}
		return
	}
	g.dKind = append(g.dKind, uint8(d.Kind))
	g.dSrc = append(g.dSrc, int32(d.Src))
	g.dDst = append(g.dDst, int32(d.Dst))
	g.dSrcT = append(g.dSrcT, d.SrcT)
	g.dDstT = append(g.dDstT, d.DstT)
	g.dBytes = append(g.dBytes, d.Bytes)
	g.prepared = false
}

// Nodes materializes the graph's activity nodes from the columns (nil
// on the nil receiver or an empty graph). It is a freshly allocated
// copy per call — a diagnostics/test surface, not an iteration path;
// analyses walk the columns directly.
func (g *Graph) Nodes() []Node {
	if g == nil || len(g.nStart) == 0 {
		return nil
	}
	out := make([]Node, len(g.nStart))
	for i := range out {
		out[i] = g.node(int32(i))
	}
	return out
}

// Deps materializes the graph's dependency edges (nil on the nil
// receiver or an empty graph). Same contract as Nodes: a copy per
// call.
func (g *Graph) Deps() []Dep {
	if g == nil || len(g.dSrcT) == 0 {
		return nil
	}
	out := make([]Dep, len(g.dSrcT))
	for i := range out {
		out[i] = g.dep(int32(i))
	}
	return out
}

// End returns the frame's end time: the maximum node end (0 when
// empty).
func (g *Graph) End() float64 {
	if g == nil {
		return 0
	}
	g.prepare()
	return g.end
}

// FromTrace assembles a real-mode graph: every recorded span becomes a
// node (nested same-phase spans included — they are the innermost wait
// intervals the path walk attributes to), and the recorder's edges
// become the cross-rank dependencies.
func FromTrace(tr *trace.Tracer, rec *Recorder) *Graph {
	g := NewGraph(tr.Size())
	for _, e := range tr.Events() {
		if e.Rank < 0 || e.Rank >= g.ranks || e.Dur <= 0 {
			continue
		}
		g.addSpan(int32(e.Rank), e.Phase, e.Name, e.Start, e.Start+e.Dur, e.Nested)
	}
	for _, d := range rec.Deps() {
		g.AddDep(d)
	}
	return g
}

// prepare builds the flat per-rank indices the analyses walk: a CSR
// grouping of node indices by rank (start-ordered within each rank,
// with an aligned prefix-max-of-ends array) and of dep indices by dst
// rank (DstT-ordered). Counting sort for the grouping keeps insertion
// order within a rank, so the stable time sorts break ties exactly as
// the per-rank append slices used to.
func (g *Graph) prepare() {
	if g == nil || g.prepared {
		return
	}
	if g.lite {
		// Lite graphs track end/endRank incrementally and index nothing.
		g.prepared = true
		return
	}
	n := len(g.nStart)
	g.end, g.endRank = 0, -1
	for i := 0; i < n; i++ {
		if g.nEnd[i] > g.end || g.endRank < 0 {
			g.end, g.endRank = g.nEnd[i], int(g.nRank[i])
		}
	}
	g.prOff = make([]int32, g.ranks+1)
	for _, r := range g.nRank {
		g.prOff[r+1]++
	}
	for r := 0; r < g.ranks; r++ {
		g.prOff[r+1] += g.prOff[r]
	}
	g.prIdx = make([]int32, n)
	pos := make([]int32, g.ranks)
	copy(pos, g.prOff[:g.ranks])
	for i := 0; i < n; i++ {
		r := g.nRank[i]
		g.prIdx[pos[r]] = int32(i)
		pos[r]++
	}
	g.meVals = make([]float64, n)
	for r := 0; r < g.ranks; r++ {
		idx := g.prIdx[g.prOff[r]:g.prOff[r+1]]
		sortByKey(idx, func(i int32) float64 { return g.nStart[i] })
		me := g.meVals[g.prOff[r]:g.prOff[r+1]]
		for j, ni := range idx {
			me[j] = g.nEnd[ni]
			if j > 0 && me[j-1] > me[j] {
				me[j] = me[j-1]
			}
		}
	}
	m := len(g.dSrcT)
	g.diOff = make([]int32, g.ranks+1)
	for _, d := range g.dDst {
		g.diOff[d+1]++
	}
	for r := 0; r < g.ranks; r++ {
		g.diOff[r+1] += g.diOff[r]
	}
	g.diIdx = make([]int32, m)
	copy(pos, g.diOff[:g.ranks])
	for i := 0; i < m; i++ {
		d := g.dDst[i]
		g.diIdx[pos[d]] = int32(i)
		pos[d]++
	}
	for r := 0; r < g.ranks; r++ {
		sortByKey(g.diIdx[g.diOff[r]:g.diOff[r+1]], func(i int32) float64 { return g.dDstT[i] })
	}
	g.prepared = true
}

// sortByKey sorts idx ascending by key, stably, so same-timestamp
// entries keep their recording order.
func sortByKey(idx []int32, key func(int32) float64) {
	sort.SliceStable(idx, func(a, b int) bool { return key(idx[a]) < key(idx[b]) })
}
