package critpath

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bgpvr/internal/stats"
)

// WriteFile writes the analysis as indented JSON to path, creating
// missing parent directories. This is the -critpath flag's artifact
// and the CI upload format.
func (a *Analysis) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// maxTextSegments bounds how many path segments the text report
// prints; the JSON export always carries the full path.
const maxTextSegments = 12

// Text renders the analysis as the plain-text report the -critpath
// flag prints: path attribution, per-phase imbalance table, straggler
// ranks, and the what-if estimates.
func (a *Analysis) Text() string {
	var b strings.Builder
	if a == nil {
		return ""
	}
	fmt.Fprintf(&b, "critical path & load imbalance (%d ranks, %d dep edges)\n", a.Ranks, a.Deps)
	if a.Ranks == 0 || a.TotalSec == 0 {
		b.WriteString("  (empty graph)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  frame total   %s\n", stats.Seconds(a.TotalSec))
	fmt.Fprintf(&b, "  path          %s across %d segments, %d rank hops (idle %s)\n",
		stats.Seconds(a.PathSec), len(a.Path), a.Hops, stats.Seconds(a.IdleSec))

	// Path attribution by phase, largest share first.
	type share struct {
		phase string
		sec   float64
	}
	var shares []share
	for ph, sec := range a.PathPhaseSec {
		shares = append(shares, share{ph, sec})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].sec != shares[j].sec {
			return shares[i].sec > shares[j].sec
		}
		return shares[i].phase < shares[j].phase
	})
	if len(shares) > 0 {
		b.WriteString("  path by phase ")
		for i, s := range shares {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %.1f%% (%s)", s.phase, 100*s.sec/a.PathSec, stats.Seconds(s.sec))
		}
		b.WriteString("\n")
	}
	if len(a.DepsByKind) > 0 {
		var kinds []string
		for k := range a.DepsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("  dep edges     ")
		for i, k := range kinds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %d", k, a.DepsByKind[k])
		}
		b.WriteString("\n")
	}

	// The path itself, possibly elided in the middle.
	if n := len(a.Path); n > 0 {
		b.WriteString("  path segments (rank phase/name start dur):\n")
		printSeg := func(s PathSegment) {
			fmt.Fprintf(&b, "    r%-6d %-9s %-22s @%-11s %s\n",
				s.Rank, s.Phase, s.Name, stats.Seconds(s.StartSec), stats.Seconds(s.DurSec))
		}
		if n <= maxTextSegments {
			for _, s := range a.Path {
				printSeg(s)
			}
		} else {
			half := maxTextSegments / 2
			for _, s := range a.Path[:half] {
				printSeg(s)
			}
			fmt.Fprintf(&b, "    ... %d segments elided ...\n", n-2*half)
			for _, s := range a.Path[n-half:] {
				printSeg(s)
			}
		}
	}

	if len(a.Phases) > 0 {
		b.WriteString("\nphase imbalance (per-rank busy time)\n")
		fmt.Fprintf(&b, "  %-9s %11s %11s %11s %7s %7s %7s %11s\n",
			"phase", "mean", "max", "p95", "imbal", "cov", "gini", "slack")
		for _, p := range a.Phases {
			fmt.Fprintf(&b, "  %-9s %11s %11s %11s %7.3f %7.3f %7.3f %11s\n",
				p.Phase, stats.Seconds(p.MeanSec), stats.Seconds(p.MaxSec),
				stats.Seconds(p.P95Sec), p.Imbalance, p.CoV, p.Gini,
				stats.Seconds(p.SlackSec))
		}
		for _, p := range a.Phases {
			if len(p.Stragglers) == 0 || p.Imbalance <= 1+1e-9 {
				continue
			}
			fmt.Fprintf(&b, "  stragglers (%s):", p.Phase)
			for _, st := range p.Stragglers {
				fmt.Fprintf(&b, " r%d %s (%.2fx mean)", st.Rank, stats.Seconds(st.BusySec), st.VsMean)
			}
			b.WriteString("\n")
		}
	}

	if len(a.WhatIf) > 0 {
		b.WriteString("\nwhat-if (one phase perfectly balanced, everything else unchanged)\n")
		for _, w := range a.WhatIf {
			fmt.Fprintf(&b, "  %-9s balanced: frame %s  (saves %s, %.3fx)\n",
				w.Phase, stats.Seconds(w.EstimatedSec), stats.Seconds(w.SavedSec), w.Speedup)
		}
	}
	return b.String()
}
