package machine

import "math/rand"

// Placement selects how MPI ranks map onto torus nodes. The paper's
// runs use the system default (consecutive ranks packed four to a node,
// so neighboring blocks are usually neighboring nodes); the alternatives
// quantify how much of the compositing behaviour depends on that
// locality.
type Placement int

// The placement strategies.
const (
	// PlacementBlock packs consecutive ranks four per node (XYZT-style
	// default mapping).
	PlacementBlock Placement = iota
	// PlacementRoundRobin deals ranks across nodes like cards, so the
	// four ranks of a node are p/4 apart in rank space.
	PlacementRoundRobin
	// PlacementRandom shuffles ranks over node slots deterministically
	// (seeded), destroying all locality.
	PlacementRandom
)

func (pl Placement) String() string {
	switch pl {
	case PlacementBlock:
		return "block"
	case PlacementRoundRobin:
		return "round-robin"
	default:
		return "random"
	}
}

// RankToNode returns the node id of every rank of a p-rank job under
// the placement.
func (m Machine) RankToNode(p int, pl Placement) []int {
	nodes := m.Nodes(p)
	out := make([]int, p)
	switch pl {
	case PlacementRoundRobin:
		for r := 0; r < p; r++ {
			out[r] = r % nodes
		}
	case PlacementRandom:
		// Deterministic shuffle of (node, slot) pairs.
		slots := make([]int, 0, nodes*m.CoresPerNode)
		for n := 0; n < nodes; n++ {
			for s := 0; s < m.CoresPerNode; s++ {
				slots = append(slots, n)
			}
		}
		rng := rand.New(rand.NewSource(20090522)) // ICPP 2009 vintage
		rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
		for r := 0; r < p; r++ {
			out[r] = slots[r]
		}
	default:
		for r := 0; r < p; r++ {
			out[r] = r / m.CoresPerNode
		}
	}
	return out
}
