package machine

import (
	"testing"

	"bgpvr/internal/compose"
)

func TestRankToNodeShapes(t *testing.T) {
	m := NewBGP()
	const p = 256
	nodes := m.Nodes(p)
	for _, pl := range []Placement{PlacementBlock, PlacementRoundRobin, PlacementRandom} {
		mapping := m.RankToNode(p, pl)
		if len(mapping) != p {
			t.Fatalf("%v: mapping length %d", pl, len(mapping))
		}
		// Exactly CoresPerNode ranks per node.
		counts := make([]int, nodes)
		for _, n := range mapping {
			if n < 0 || n >= nodes {
				t.Fatalf("%v: node %d out of range", pl, n)
			}
			counts[n]++
		}
		for n, c := range counts {
			if c != m.CoresPerNode {
				t.Errorf("%v: node %d hosts %d ranks", pl, n, c)
			}
		}
	}
	// Block: consecutive; round-robin: strided.
	if m.RankToNode(p, PlacementBlock)[5] != 1 {
		t.Error("block placement wrong")
	}
	if m.RankToNode(p, PlacementRoundRobin)[5] != 5 {
		t.Error("round-robin placement wrong")
	}
	// Random is deterministic.
	a := m.RankToNode(p, PlacementRandom)
	b := m.RankToNode(p, PlacementRandom)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random placement not deterministic")
		}
	}
}

func TestPhaseOnTorusPlacedSelfMessages(t *testing.T) {
	m := NewBGP()
	// Under block placement ranks 0-3 share a node; under round-robin
	// they do not.
	msg := []compose.RankMessage{{Src: 0, Dst: 3, Bytes: 100}}
	if st := m.PhaseOnTorusPlaced(64, msg, true, PlacementBlock); st.MaxHops != 0 {
		t.Error("block placement should co-locate ranks 0-3")
	}
	if st := m.PhaseOnTorusPlaced(64, msg, true, PlacementRoundRobin); st.MaxHops == 0 {
		t.Error("round-robin should separate ranks 0 and 3")
	}
}
