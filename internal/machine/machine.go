// Package machine describes the Blue Gene/P installation of §III-A as a
// parameterized model: 850 MHz quad-core nodes (2 GB each), 1K nodes per
// rack, 40 racks, one I/O node per 64 compute nodes, a 3D torus for
// point-to-point traffic, a tree network for collectives and I/O
// forwarding, and the striped storage system of Fig 2. It is the single
// place the published constants live; the model-mode pipeline composes
// its timing from the sub-models it aggregates.
package machine

import (
	"fmt"

	"bgpvr/internal/compose"
	"bgpvr/internal/pfs"
	"bgpvr/internal/torus"
	"bgpvr/internal/tree"
)

// Machine is a Blue Gene/P style system description.
type Machine struct {
	CoresPerNode int
	NodesPerION  int
	NodesPerRack int
	Racks        int
	CoreHz       float64

	// SecondsPerSample is the calibrated cost of one ray-casting sample
	// (trilinear fetch + classification + blend) on one core. The value
	// is fitted to the paper's Fig 3 rendering curve (~40 s for 1120^3 /
	// 1600^2 on 64 cores, ~0.2 s on 16K cores).
	SecondsPerSample float64

	Torus   torus.Params
	Tree    tree.Params
	Storage pfs.Params
}

// NewBGP returns the Argonne Blue Gene/P ("Intrepid") description used
// throughout the experiments.
func NewBGP() Machine {
	return Machine{
		CoresPerNode:     4,
		NodesPerION:      64,
		NodesPerRack:     1024,
		Racks:            40,
		CoreHz:           850e6,
		SecondsPerSample: 3.0e-6,
		Torus:            torus.NewBGP(),
		Tree:             tree.NewBGP(),
		Storage:          pfs.NewBGPStorage(),
	}
}

// TotalCores returns the full system size (163,840 for the real machine).
func (m Machine) TotalCores() int {
	return m.CoresPerNode * m.NodesPerRack * m.Racks
}

// Nodes returns the compute nodes a p-core job occupies (virtual-node
// mode: all four cores per node run ranks, as the paper's runs did).
func (m Machine) Nodes(p int) int {
	return (p + m.CoresPerNode - 1) / m.CoresPerNode
}

// IONs returns the I/O nodes serving a p-core job.
func (m Machine) IONs(p int) int {
	return (m.Nodes(p) + m.NodesPerION - 1) / m.NodesPerION
}

// Aggregators returns the default MPI-IO aggregator count for a p-core
// job: eight per I/O node (pset), ROMIO's Blue Gene default.
func (m Machine) Aggregators(p int) int {
	a := 8 * m.IONs(p)
	if a > p {
		a = p
	}
	return a
}

// TorusFor returns the torus topology of the partition running p ranks.
func (m Machine) TorusFor(p int) torus.Topology {
	return torus.NewTopology(m.Nodes(p))
}

// NodeOf maps a rank to its node id (block mapping, ranks packed four
// per node).
func (m Machine) NodeOf(rank int) int { return rank / m.CoresPerNode }

// PhaseOnTorus times a set of rank-level messages on the partition's
// torus by folding ranks onto nodes with the default block placement.
func (m Machine) PhaseOnTorus(p int, msgs []compose.RankMessage, contention bool) torus.PhaseStats {
	return m.PhaseOnTorusPlaced(p, msgs, contention, PlacementBlock)
}

// PhaseOnTorusPlaced is PhaseOnTorus under an explicit rank placement.
func (m Machine) PhaseOnTorusPlaced(p int, msgs []compose.RankMessage, contention bool, pl Placement) torus.PhaseStats {
	return m.PhaseOnTorusRecorded(p, msgs, contention, pl, nil)
}

// PhaseOnTorusRecorded is PhaseOnTorusPlaced with optional per-link
// telemetry: a non-nil rec (typically *telemetry.LinkUsage sized to
// TorusFor(p).NumLinks()) receives every node-folded message's
// per-link load. rec == nil adds nothing.
func (m Machine) PhaseOnTorusRecorded(p int, msgs []compose.RankMessage, contention bool, pl Placement, rec torus.LinkRecorder) torus.PhaseStats {
	top := m.TorusFor(p)
	nodeOf := m.RankToNode(p, pl)
	nm := make([]torus.Message, len(msgs))
	for i, mm := range msgs {
		if mm.Src < 0 || mm.Src >= p || mm.Dst < 0 || mm.Dst >= p {
			panic(fmt.Sprintf("machine: rank message %+v outside %d ranks", mm, p))
		}
		nm[i] = torus.Message{Src: nodeOf[mm.Src], Dst: nodeOf[mm.Dst], Bytes: mm.Bytes}
	}
	return torus.PhaseRecorded(top, m.Torus, nm, contention, rec)
}

// ImprovedCompositors returns the paper's empirically chosen compositor
// count for n renderers: m = n up to 1K, 1K compositors for 1K-4K
// renderers, and 2K compositors beyond 4K ("we used 1K compositors when
// the number of renderers is between 1K and 4K and then 2K compositors
// beyond that").
func ImprovedCompositors(n int) int {
	switch {
	case n <= 1024:
		return n
	case n <= 4096:
		return 1024
	default:
		return 2048
	}
}
