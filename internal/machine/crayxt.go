package machine

import (
	"bgpvr/internal/pfs"
	"bgpvr/internal/torus"
	"bgpvr/internal/tree"
)

// NewCrayXT returns a Cray XT4-class machine description — the paper's
// stated follow-up platform ("we plan to also conduct similar
// experiments on other supercomputer systems such as the Cray XT").
// Salient contrasts with Blue Gene/P, from the published XT4 numbers:
//
//   - faster cores (2.1 GHz quad-core Opterons vs 850 MHz PPC450), so
//     rendering is ~2.5x faster per core;
//   - a SeaStar2 3D torus with much higher link bandwidth (~7.6 GB/s
//     per link) but markedly higher per-message software overhead
//     (Portals ~5-8 µs) and no separate collective network — barriers
//     run over the torus, modeled here as a software tree;
//   - a Lustre file system instead of PVFS/GPFS ("we are conducting
//     similar experiments on Lustre"), with fewer, faster OSTs and no
//     ION indirection (every node mounts Lustre; the ION abstraction
//     maps to OST groups).
//
// The cross-machine bench contrasts where each system's bottlenecks
// fall; absolute numbers are indicative, not measured.
func NewCrayXT() Machine {
	const linkBW = 7.6e9 // SeaStar2: 7.6 GB/s per link per direction
	return Machine{
		CoresPerNode:     4,
		NodesPerION:      32, // nodes per OST group (Lustre has no IONs)
		NodesPerRack:     96, // XT4 cabinet: 24 blades x 4 nodes
		Racks:            200,
		CoreHz:           2.1e9,
		SecondsPerSample: 1.2e-6, // faster cores, same algorithm
		Torus: torus.Params{
			LinkBandwidth: linkBW,
			HopLatency:    50e-9,
			RouteLatency:  2.0e-6,
			SendOverhead:  5.0e-6, // Portals software overhead
			RecvOverhead:  6.0e-6,
			InjectionBW:   6.4e9, // HyperTransport node injection limit
			EjectionBW:    6.4e9,
			QueuePenalty:  20e-6, // heavier software matching than BG/P
			SmallMsgRef:   1024,
		},
		Tree: tree.Params{
			// No hardware collective network: a software tree over the
			// torus (per-level latency is a short message).
			LinkBandwidth: linkBW,
			HopLatency:    6.0e-6,
		},
		Storage: pfs.Params{
			Servers:         144, // OSTs
			StripeSize:      1 << 20,
			OpenCost:        0.9, // Lustre opens are costlier at scale
			PerProcOverhead: 1.2e-4,
			SatBW:           2.4e9, // larger streaming ceiling
			HalfSatIONs:     8,
			AccessLatency:   5e-3,
			IONLinkBW:       1.2e9,
		},
	}
}
