package machine

import (
	"testing"

	"bgpvr/internal/compose"
)

func TestBGPPublishedNumbers(t *testing.T) {
	m := NewBGP()
	if m.TotalCores() != 163840 {
		t.Errorf("total cores = %d, want 163840 (40 racks)", m.TotalCores())
	}
	if m.CoreHz != 850e6 {
		t.Errorf("core clock = %v", m.CoreHz)
	}
}

func TestNodesAndIONs(t *testing.T) {
	m := NewBGP()
	cases := []struct{ p, nodes, ions int }{
		{1, 1, 1},
		{4, 1, 1},
		{64, 16, 1},
		{256, 64, 1},
		{1024, 256, 4},
		{16384, 4096, 64},
		{32768, 8192, 128},
	}
	for _, c := range cases {
		if got := m.Nodes(c.p); got != c.nodes {
			t.Errorf("Nodes(%d) = %d, want %d", c.p, got, c.nodes)
		}
		if got := m.IONs(c.p); got != c.ions {
			t.Errorf("IONs(%d) = %d, want %d", c.p, got, c.ions)
		}
	}
}

func TestAggregatorsCappedByProcs(t *testing.T) {
	m := NewBGP()
	if got := m.Aggregators(32768); got != 1024 {
		t.Errorf("Aggregators(32K) = %d, want 1024", got)
	}
	if got := m.Aggregators(4); got != 4 {
		t.Errorf("Aggregators(4) = %d, want 4 (capped)", got)
	}
}

func TestImprovedCompositorsRule(t *testing.T) {
	cases := map[int]int{
		64:    64,
		1024:  1024,
		2048:  1024,
		4096:  1024,
		8192:  2048,
		32768: 2048,
	}
	for n, want := range cases {
		if got := ImprovedCompositors(n); got != want {
			t.Errorf("ImprovedCompositors(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPhaseOnTorusFoldsRanks(t *testing.T) {
	m := NewBGP()
	// Ranks 0-3 share node 0; a message between them is a self-message.
	st := m.PhaseOnTorus(64, []compose.RankMessage{{Src: 0, Dst: 3, Bytes: 100}}, true)
	if st.MaxHops != 0 {
		t.Errorf("same-node message has %d hops", st.MaxHops)
	}
	st = m.PhaseOnTorus(64, []compose.RankMessage{{Src: 0, Dst: 63, Bytes: 100}}, true)
	if st.MaxHops == 0 {
		t.Error("cross-node message should hop")
	}
}

func TestPhaseOnTorusPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBGP().PhaseOnTorus(8, []compose.RankMessage{{Src: 0, Dst: 100, Bytes: 1}}, true)
}
