package machine

import "testing"

func TestCrayXTProfile(t *testing.T) {
	xt := NewCrayXT()
	bgp := NewBGP()
	if xt.CoreHz <= bgp.CoreHz {
		t.Error("XT cores should be faster")
	}
	if xt.SecondsPerSample >= bgp.SecondsPerSample {
		t.Error("XT should render faster per core")
	}
	if xt.Torus.LinkBandwidth <= bgp.Torus.LinkBandwidth {
		t.Error("SeaStar links should be faster than BG/P links")
	}
	if xt.Torus.SendOverhead <= bgp.Torus.SendOverhead {
		t.Error("Portals per-message overhead should exceed BG/P's")
	}
	if xt.Storage.SatBW <= bgp.Storage.SatBW {
		t.Error("Lustre streaming ceiling should exceed the BG/P workload ceiling")
	}
	if xt.TotalCores() < 32768 {
		t.Errorf("XT model too small for the experiments: %d cores", xt.TotalCores())
	}
}
