// InSitu: the paper's future-work direction ("we hope that in situ
// techniques will enable scientists to see early results of their
// computations, as well as eliminate or reduce expensive storage
// accesses, because ... I/O dominates large-scale visualization").
//
// A toy time-dependent simulation (the synthetic supernova's SASI phase
// advancing each step) is rendered directly from memory every step — no
// I/O stage at all. For each frame the example also reports what the
// machine model says the same frame would have cost at paper scale with
// the I/O stage included, making the in-situ argument quantitative.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"

	"bgpvr/internal/core"
	"bgpvr/internal/stats"
)

func main() {
	scene := core.DefaultScene(64, 192)
	scene.Perspective = true

	// Paper-scale comparison: one 1120^3 frame with and without I/O.
	paper, err := core.PaperScene(1120)
	if err != nil {
		log.Fatal(err)
	}
	withIO, err := core.RunModel(core.ModelConfig{Scene: paper, Procs: 16384, Format: core.FormatRaw})
	if err != nil {
		log.Fatal(err)
	}
	inSitu, err := core.RunModel(core.ModelConfig{Scene: paper, Procs: 16384, Format: core.FormatGenerate})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model, 1120^3 at 16K cores: post-hoc frame %s, in-situ frame %s (%.0fx)\n\n",
		stats.Seconds(withIO.Times.Total), stats.Seconds(inSitu.Times.Total),
		withIO.Times.Total/inSitu.Times.Total)

	// Real mode: march the "simulation" and render every step in situ.
	const steps = 5
	fmt.Printf("real mode: %d^3 volume, 8 ranks, %d simulation steps\n", scene.Dims.X, steps)
	for step := 0; step < steps; step++ {
		scene.Time = 0.4 * float64(step) // the SASI slosh phase advances
		res, err := core.RunReal(core.RealConfig{
			Scene: scene, Procs: 8, Format: core.FormatGenerate,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("insitu-step%d.ppm", step)
		if err := res.Image.WritePPM(name, 0.02); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: vis %s -> %s\n", step,
			stats.Seconds(res.Times.Render+res.Times.Composite), name)
	}
	fmt.Println("\nevery frame rendered without touching storage — the in-situ case")
}
