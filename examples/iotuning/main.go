// IOTuning: the paper's §V MPI-IO hint study on a real file.
//
// It writes a five-variable netCDF record file, then reads one variable
// collectively with a sweep of cb_buffer_size values, printing the
// physical bytes, access counts and data density each hint produces —
// the laptop-scale version of Figs 7, 9 and 10. Watch the density jump
// when the buffer matches the record size.
//
//	go run ./examples/iotuning
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bgpvr/internal/core"
	"bgpvr/internal/grid"
	"bgpvr/internal/mpiio"
	"bgpvr/internal/stats"
	"bgpvr/internal/volume"
)

func main() {
	const n = 64
	scene := core.DefaultScene(n, 64)
	scene.Variable = volume.VarPressure

	dir, err := os.MkdirTemp("", "iotuning")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "step.nc")
	if err := core.WriteSceneFile(path, core.FormatNetCDF, scene); err != nil {
		log.Fatal(err)
	}

	// The union request of a whole-variable collective read: one 2D
	// slice per record, one record in five useful (Fig 8).
	union, err := core.UnionRuns(core.FormatNetCDF, scene)
	if err != nil {
		log.Fatal(err)
	}
	useful := grid.TotalBytes(union)
	recSize := int64(n) * int64(n) * 4
	fmt.Printf("netCDF record file: %d^3, 5 variables, record %s, useful %s\n",
		n, stats.Bytes(recSize), stats.Bytes(useful))

	fmt.Printf("\n%-14s %12s %10s %10s %9s\n", "cb_buffer", "physical", "accesses", "density", "I/O time")
	for _, mult := range []float64{0.25, 0.5, 1, 2, 5, 20} {
		w := int64(float64(recSize) * mult)
		// Plan (what the aggregators will read)...
		plan := mpiio.BuildPlan(union, mpiio.Hints{CBBufferSize: w, CBNodes: 4})
		st := plan.Stats()
		// ...and execute for real to time it and confirm the trace.
		res, err := core.RunReal(core.RealConfig{
			Scene: scene, Procs: 8, Format: core.FormatNetCDF, Path: path,
			Hints: mpiio.Hints{CBBufferSize: w, CBNodes: 4},
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.2fx record", mult)
		fmt.Printf("%-14s %12s %10d %10.3f %9s\n", label,
			stats.Bytes(st.PhysicalBytes), st.Accesses, st.Density(),
			stats.Seconds(res.Times.IO))
		if res.IO.PhysicalBytes != st.PhysicalBytes {
			log.Fatalf("executed physical bytes %d != planned %d", res.IO.PhysicalBytes, st.PhysicalBytes)
		}
	}
	fmt.Println("\nthe paper's tuning: cb_buffer_size = record size minimizes over-read")
	fmt.Println("(\"eliminating reads of data we would not be processing\", §V-A)")
}
