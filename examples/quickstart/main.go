// Quickstart: the smallest end-to-end use of bgpvr.
//
// It renders one frame of the synthetic supernova with 8 parallel ranks
// (in-memory data, direct-send compositing), verifies the result against
// the serial reference renderer, and writes the image.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bgpvr/internal/core"
	"bgpvr/internal/img"
	"bgpvr/internal/render"
)

func main() {
	// A scene is the volume + camera + transfer function. DefaultScene
	// gives a 64^3 synthetic supernova viewed off-axis.
	scene := core.DefaultScene(64, 256)

	// Run the parallel pipeline: 8 ranks, 4 compositors, no I/O stage.
	res, err := core.RunReal(core.RealConfig{
		Scene:       scene,
		Procs:       8,
		Compositors: 4,
		Format:      core.FormatGenerate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame: io=%.1fms render=%.1fms composite=%.1fms (%d samples)\n",
		res.Times.IO*1e3, res.Times.Render*1e3, res.Times.Composite*1e3, res.Samples)

	// Cross-check against the serial renderer — the pipeline's central
	// invariant is that they match.
	field := scene.Supernova().GenerateFull(scene.Variable, scene.Dims)
	ref, _ := render.RenderFull(field, scene.Camera(), scene.Transfer(), scene.RenderConfig())
	if d := img.MaxDiff(res.Image, ref); d > 1e-5 {
		log.Fatalf("parallel image differs from serial by %v", d)
	}
	fmt.Println("parallel == serial ✓")

	if err := res.Image.WritePPM("quickstart.ppm", 0.02); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.ppm")
}
