// Supernova: the paper's motivating workload end to end, at laptop
// scale. It writes one time step of the synthetic core-collapse
// supernova as a five-variable netCDF record file (the VH-1 layout of
// Fig 8), reads the X-velocity variable back through the two-phase
// collective I/O path, renders it in parallel, and writes an image akin
// to the paper's Fig 1.
//
//	go run ./examples/supernova
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bgpvr/internal/core"
	"bgpvr/internal/mpiio"
	"bgpvr/internal/stats"
	"bgpvr/internal/volume"
)

func main() {
	scene := core.DefaultScene(96, 384)
	scene.Variable = volume.VarVelocityX
	scene.Perspective = true
	scene.Step = 0.5

	dir, err := os.MkdirTemp("", "supernova")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "vh1-step1530.nc")

	fmt.Printf("writing %d^3 x 5 variables netCDF time step...\n", scene.Dims.X)
	if err := core.WriteSceneFile(path, core.FormatNetCDF, scene); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("  %s (%s)\n", path, stats.Bytes(st.Size()))

	// Read one of five interleaved record variables collectively and
	// render. The record size is the natural cb_buffer_size (the
	// paper's tuning).
	recSize := int64(scene.Dims.X) * int64(scene.Dims.Y) * 4
	res, err := core.RunReal(core.RealConfig{
		Scene:  scene,
		Procs:  8,
		Format: core.FormatNetCDF,
		Path:   path,
		Hints:  mpiio.Hints{CBBufferSize: recSize, CBNodes: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame: io=%s render=%s composite=%s\n",
		stats.Seconds(res.Times.IO), stats.Seconds(res.Times.Render), stats.Seconds(res.Times.Composite))
	fmt.Printf("I/O: %s physical in %d accesses for %s useful (density %.2f)\n",
		stats.Bytes(res.IO.PhysicalBytes), res.IO.Accesses,
		stats.Bytes(res.IO.UsefulBytes), res.IO.Density())

	if err := res.Image.WritePPM("supernova.ppm", 0.02); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote supernova.ppm (cf. the paper's Fig 1)")
}
