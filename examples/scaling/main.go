// Scaling: the paper's Fig 3 study at two scales.
//
// First a real-mode strong-scaling sweep on a small volume (goroutine
// ranks, wall-clock time), then the model-mode sweep at the paper's full
// 1120^3 / 1600^2 / 64-32K-core scale, with both the original (m = n)
// and improved (limited compositors) direct-send schemes.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"runtime"

	"bgpvr/internal/core"
)

func main() {
	// Real mode: strong scaling of the rendering stage. Wall-clock
	// speedups on a laptop are bounded by physical cores, so expect the
	// curve to flatten past runtime.NumCPU().
	scene := core.DefaultScene(96, 192)
	fmt.Printf("real mode: %d^3 volume, %d^2 image, host has %d cores\n",
		scene.Dims.X, scene.ImageW, runtime.NumCPU())
	fmt.Printf("%6s %12s %12s %12s\n", "ranks", "render", "composite", "total")
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := core.RunReal(core.RealConfig{Scene: scene, Procs: p, Format: core.FormatGenerate})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %10.1fms %10.1fms %10.1fms\n",
			p, res.Times.Render*1e3, res.Times.Composite*1e3, res.Times.Total*1e3)
	}

	// Model mode: the paper's sweep.
	paper, err := core.PaperScene(1120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel mode: 1120^3 raw, 1600^2 image on the Blue Gene/P model\n")
	fmt.Printf("%6s %9s %9s %11s %11s %9s\n", "cores", "I/O", "render", "comp(m=n)", "comp(impr)", "total")
	for _, p := range []int{64, 256, 1024, 4096, 16384, 32768} {
		orig, err := core.RunModel(core.ModelConfig{Scene: paper, Procs: p, Compositors: p, Format: core.FormatRaw})
		if err != nil {
			log.Fatal(err)
		}
		impr, err := core.RunModel(core.ModelConfig{Scene: paper, Procs: p, Format: core.FormatRaw})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8.2fs %8.2fs %10.3fs %10.3fs %8.2fs\n",
			p, impr.Times.IO, impr.Times.Render,
			orig.Times.Composite, impr.Times.Composite, impr.Times.Total)
	}
	fmt.Println("\nnote the original compositing blow-up beyond 1K cores and the")
	fmt.Println("I/O-dominated totals — the paper's two headline observations.")
}
