// Multivar: the multivariate payoff of reading netCDF directly.
//
// The paper reads the five-variable netCDF file in the visualization
// partly because it "affords the possibility to perform multivariate
// visualizations" (§V). This example reads TWO record variables from
// one file — X velocity for color and density as an opacity modulator —
// with two collective reads, and renders the bivariate classification.
//
//	go run ./examples/multivar
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bgpvr/internal/comm"
	cpose "bgpvr/internal/compose"
	"bgpvr/internal/core"
	"bgpvr/internal/grid"
	"bgpvr/internal/img"
	"bgpvr/internal/mpiio"
	"bgpvr/internal/netcdf"
	"bgpvr/internal/render"
	"bgpvr/internal/stats"
	"bgpvr/internal/vfile"
	"bgpvr/internal/volume"
)

func main() {
	scene := core.DefaultScene(80, 320)
	scene.Perspective = true
	scene.Step = 0.5
	const procs = 8

	dir, err := os.MkdirTemp("", "multivar")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "step.nc")
	fmt.Printf("writing %d^3 x 5 variable netCDF time step...\n", scene.Dims.X)
	if err := core.WriteSceneFile(path, core.FormatNetCDF, scene); err != nil {
		log.Fatal(err)
	}

	f, err := vfile.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	hdr, err := netcdf.ReadHeader(f)
	if err != nil {
		log.Fatal(err)
	}
	vx, _ := hdr.VarByName("velocity_x")
	rho, _ := hdr.VarByName("density")

	d := grid.NewDecomp(scene.Dims, procs)
	cam := scene.Camera()
	cls := render.ModulatedClassifier(scene.Transfer(), 0.35, 0.75)
	order := scene.FrontToBack(d)
	rects := make([]img.Rect, procs)
	for r := range rects {
		rects[r] = render.ProjectedRect(cam, d.BlockExtent(r))
	}

	var final *img.Image
	world := comm.NewWorld(procs)
	err = world.Run(func(c *comm.Comm) error {
		gext := d.GhostExtent(c.Rank(), 1)
		readVar := func(v *netcdf.Var) (*volume.Field, error) {
			runs, err := hdr.VarRuns(v, gext)
			if err != nil {
				return nil, err
			}
			raw, err := mpiio.CollectiveRead(c, f, runs, mpiio.Hints{CBNodes: 4})
			if err != nil {
				return nil, err
			}
			fld := volume.NewField(scene.Dims, gext)
			netcdf.DecodeFloats(raw, fld.Data)
			return fld, nil
		}
		fvx, err := readVar(vx)
		if err != nil {
			return err
		}
		frho, err := readVar(rho)
		if err != nil {
			return err
		}
		sub := render.RenderBlockMulti([]*volume.Field{fvx, frho},
			d.BlockExtent(c.Rank()), cam, cls, scene.RenderConfig())
		out, err := compose(c, sub, rects, scene, order)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			final = out
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := final.WritePPM("multivar.ppm", 0.02); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote multivar.ppm (velocity colored, density-modulated, %s file)\n",
		stats.Bytes(f.Size()))
}

// compose runs direct-send with four compositors.
func compose(c *comm.Comm, sub *render.Subimage, rects []img.Rect, scene core.Scene, order []int) (*img.Image, error) {
	return cpose.DirectSend(c, sub, rects, scene.ImageW, scene.ImageH, 4, order)
}
