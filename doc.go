// Package bgpvr is a from-scratch Go reproduction of "End-to-End Study
// of Parallel Volume Rendering on the IBM Blue Gene/P" (Peterka, Yu,
// Ross, Ma, Latham — ICPP 2009): sort-last parallel ray-casting volume
// rendering with collective I/O and direct-send compositing, together
// with every substrate the paper's experiments depend on — an MPI-like
// runtime, a netCDF classic codec (CDF-1/2/5), an HDF5-like container,
// a ROMIO-style two-phase collective I/O layer, and a parameterized
// Blue Gene/P machine model (3D torus, tree network, striped parallel
// file system) that regenerates the paper's tables and figures.
//
// See README.md for usage, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for the paper-vs-measured
// comparison. The benchmarks in bench_test.go regenerate each exhibit:
//
//	go test -bench=Fig3 -benchtime=1x .
package bgpvr
