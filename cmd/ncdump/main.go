// Command ncdump prints the header of a netCDF classic file (CDF-1/2/5)
// in CDL notation, like the real `ncdump -h`. It also understands the
// repository's h5lite containers.
//
//	ncdump step.nc
//	ncdump -layout step.nc    # add per-variable byte offsets
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bgpvr/internal/h5lite"
	"bgpvr/internal/netcdf"
	"bgpvr/internal/stats"
	"bgpvr/internal/vfile"
)

func main() {
	layout := flag.Bool("layout", false, "also print the byte layout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ncdump [-layout] <file>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *layout); err != nil {
		fmt.Fprintln(os.Stderr, "ncdump:", err)
		os.Exit(1)
	}
}

func run(path string, layout bool) error {
	f, err := vfile.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	name := filepath.Base(path)
	if h, err := netcdf.ReadHeader(f); err == nil {
		fmt.Print(h.CDL(name))
		if layout {
			fmt.Println("\n// layout:")
			for i := range h.Vars {
				v := &h.Vars[i]
				kind := "fixed"
				if h.IsRecordVar(v) {
					kind = fmt.Sprintf("record (stride %d)", h.RecSize())
				}
				fmt.Printf("//\t%-16s begin %12d  vsize %10d  %s\n", v.Name, v.Begin, v.VSize, kind)
			}
		}
		return nil
	}

	// Fall back to h5lite.
	h5, err := h5lite.Open(f)
	if err != nil {
		return fmt.Errorf("not a netCDF classic or h5lite file: %w", err)
	}
	fmt.Printf("h5lite %s {\n", name)
	for _, d := range h5.Datasets {
		fmt.Printf("\tfloat %s(%d, %d, %d) ;  // %s at offset %d\n",
			d.Name, d.Dims.Z, d.Dims.Y, d.Dims.X, stats.Bytes(d.Size), d.Offset)
		for k, v := range d.Attrs {
			fmt.Printf("\t\t%s:%s = %q ;\n", d.Name, k, v)
		}
	}
	fmt.Println("}")
	return nil
}
