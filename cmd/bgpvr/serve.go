package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgpvr/internal/obs"
	"bgpvr/internal/serve"
)

// serveArgs carries the parsed -serve* flags.
type serveArgs struct {
	addr         string
	concurrency  int
	queue        int
	deadline     time.Duration
	cacheMB      int
	drain        time.Duration
	workers      int
	runRecord    string
	crashDump    string
	softDeadline time.Duration
	slo          time.Duration
	diagDir      string
	traceMB      int
	traceSample  int
}

// runServe runs the persistent render service until SIGINT/SIGTERM,
// then drains. The service owns the termination signals (they mean
// "drain", not "crash"), so when the flight recorder is armed it
// watches SIGQUIT only; a hung drain is still guarded by the
// recorder's soft deadline.
func runServe(a serveArgs) error {
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if a.crashDump != "" || a.softDeadline > 0 {
		wd := obs.StartWatchdog(obs.WatchdogConfig{
			Path:         a.crashDump,
			SoftDeadline: a.softDeadline,
			Signals:      []os.Signal{syscall.SIGQUIT},
		})
		defer wd.Stop()
	}
	s := serve.New(serve.Config{
		MaxConcurrent:   a.concurrency,
		QueueDepth:      a.queue,
		DefaultDeadline: a.deadline,
		Workers:         a.workers,
		CacheMB:         a.cacheMB,
		RunsPath:        a.runRecord,
		SLO:             a.slo,
		DiagDir:         a.diagDir,
		TraceBudgetMB:   a.traceMB,
		TraceSampleN:    a.traceSample,
		Log:             log,
	})
	if err := s.Start(a.addr); err != nil {
		return err
	}
	fmt.Printf("render service: http://%s/ (POST /render, /status, /traces, /metrics, pprof)\n", s.Addr())
	obs.Note("serve mode: addr=%s workers=%d", s.Addr(), a.workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	signal.Stop(sig)
	log.Info("draining", "signal", got.String(), "timeout", a.drain)
	ctx, cancel := context.WithTimeout(context.Background(), a.drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Info("drained, exiting")
	return nil
}
