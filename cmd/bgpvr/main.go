// Command bgpvr runs one end-to-end parallel volume rendering frame:
// collective I/O (or in-memory generation), parallel ray casting, and
// direct-send compositing.
//
// Real mode executes with goroutine ranks on real data and writes the
// final image:
//
//	bgpvr -mode real -n 64 -img 256 -procs 8 -m 4 -format raw -o frame.ppm
//
// Model mode computes the virtual frame time at Blue Gene/P scale:
//
//	bgpvr -mode model -n 1120 -img 1600 -procs 16384 -format raw
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bgpvr/internal/bench"
	"bgpvr/internal/core"
	"bgpvr/internal/critpath"
	"bgpvr/internal/machine"
	"bgpvr/internal/mpiio"
	"bgpvr/internal/obs"
	"bgpvr/internal/par"
	"bgpvr/internal/runstore"
	"bgpvr/internal/stats"
	"bgpvr/internal/telemetry"
	"bgpvr/internal/trace"
)

func main() {
	mode := flag.String("mode", "real", "real or model")
	n := flag.Int("n", 64, "volume grid size n^3")
	imgSize := flag.Int("img", 256, "image size (square)")
	procs := flag.Int("procs", 8, "number of ranks")
	m := flag.Int("m", 0, "compositors (0: real=procs, model=paper's improved rule)")
	format := flag.String("format", "generate", "generate, raw, netcdf, cdf5, h5")
	path := flag.String("path", "", "data file (written if absent; default under temp)")
	algo := flag.String("algo", "direct", "direct, binaryswap, radixk, gather (real mode)")
	persp := flag.Bool("persp", false, "perspective camera")
	window := flag.Int64("cb", 0, "MPI-IO cb_buffer_size hint (0 = default)")
	ghostExchange := flag.Bool("ghost-exchange", false, "obtain ghost layers by neighbor messages instead of reading them")
	shaded := flag.Bool("shaded", false, "gradient shading (real mode)")
	frames := flag.Int("frames", 1, "time steps to render (real mode; >1 animates the SASI phase)")
	out := flag.String("o", "", "output PPM path (real mode; %d inserted for -frames > 1)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the frame (chrome://tracing, Perfetto)")
	breakdown := flag.Bool("breakdown", false, "print the per-phase end-to-end breakdown table")
	debugAddr := flag.String("debug-addr", "", "serve a live debug endpoint (net/http/pprof, expvar, /telemetry) on this address while the run executes")
	perfReport := flag.String("perf-report", "", "write a machine-readable perf report (breakdown + telemetry + runtime stats) to this JSON file")
	critOut := flag.String("critpath", "", "print the critical-path & load-imbalance report and write the full analysis as JSON to this file")
	linkmap := flag.String("linkmap", "", "write the compositing phase's per-link contention map as <prefix>.csv and <prefix>.pgm (model mode)")
	runRecord := flag.String("run-record", "", "append this run's perf report to the JSONL run registry (see cmd/perfhistory)")
	workers := flag.Int("workers", 0, "worker goroutines for the parallel render loops (0 = all cores)")
	flowsimApprox := flag.Float64("flowsim-approx", -1, "cross-check the model's compositing phase with the max-min flow kernel: 0 runs it exactly, eps > 0 the bounded-error clustered approximation (< 0 skips; model mode)")
	flowsimEndpointAgg := flag.Bool("flowsim-endpoint-agg", false, "with -flowsim-approx, also pool endpoint-region interior hops onto the regional aggregates (only injection/ejection hops stay physical); engages above the decomposition's floor")
	progress := flag.Bool("progress", false, "emit periodic structured progress heartbeats (phase done/total, rate, ETA) to stderr")
	progressInterval := flag.Duration("progress-interval", obs.DefaultHeartbeatInterval, "heartbeat period for -progress")
	crashDump := flag.String("crash-dump", "", "write a flight record (recent events, phase progress, metrics, goroutine stacks) to this file on SIGQUIT/SIGTERM or -soft-deadline, then exit")
	softDeadline := flag.Duration("soft-deadline", 0, "dump the flight record and exit this long after start; set it just below an external kill budget so the run leaves a post-mortem (0 disables)")
	serveAddr := flag.String("serve", "", "run as a persistent render service on this address (e.g. 127.0.0.1:8080); POST /render, GET /status, /metrics, pprof. Ignores -mode and the one-shot flags")
	serveConcurrency := flag.Int("serve-concurrency", 0, "frames rendering at once in serve mode (0 = default 2)")
	serveQueue := flag.Int("serve-queue", 0, "admitted requests waiting beyond the ones in flight before 429 (0 = default 8)")
	serveDeadline := flag.Duration("serve-deadline", 0, "default per-request deadline in serve mode (0 = 30s)")
	serveCacheMB := flag.Int("serve-cache-mb", 0, "volume field cache budget in MB (0 = 256)")
	serveDrain := flag.Duration("serve-drain", 15*time.Second, "how long Shutdown waits for in-flight requests on SIGINT/SIGTERM")
	serveSLO := flag.Duration("serve-slo", 0, "per-request latency objective in serve mode; requests over it are tail-sampled into the trace store and, with -diag-dir, dumped as diagnostic bundles (0 disables the SLO rule)")
	diagDir := flag.String("diag-dir", "", "directory for SLO-breach diagnostic bundles (span tree + metrics + flight record per breaching request)")
	serveTraceMB := flag.Int("serve-trace-mb", 0, "trace store byte budget in MB for tail-sampled request traces (0 = default 8, -1 disables tracing)")
	serveTraceSample := flag.Int("serve-trace-sample", 0, "keep 1-in-N of requests that no tail rule selects (0 = default 16, -1 keeps none of them)")
	flag.Parse()

	if *progress {
		hb := obs.StartHeartbeat(slog.New(slog.NewTextHandler(os.Stderr, nil)), *progressInterval)
		defer hb.Stop()
	}
	if *serveAddr != "" {
		if err := runServe(serveArgs{addr: *serveAddr, concurrency: *serveConcurrency,
			queue: *serveQueue, deadline: *serveDeadline, cacheMB: *serveCacheMB,
			drain: *serveDrain, workers: *workers, runRecord: *runRecord,
			crashDump: *crashDump, softDeadline: *softDeadline,
			slo: *serveSLO, diagDir: *diagDir,
			traceMB: *serveTraceMB, traceSample: *serveTraceSample}); err != nil {
			fmt.Fprintln(os.Stderr, "bgpvr:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(runArgs{mode: *mode, n: *n, imgSize: *imgSize, procs: *procs, m: *m,
		format: *format, path: *path, algo: *algo, persp: *persp, shaded: *shaded,
		window: *window, ghostExchange: *ghostExchange, frames: *frames, out: *out,
		traceOut: *traceOut, breakdown: *breakdown, critpath: *critOut,
		debugAddr: *debugAddr, perfReport: *perfReport, linkmap: *linkmap,
		runRecord: *runRecord, flowsimEps: *flowsimApprox, flowsimEndpointAgg: *flowsimEndpointAgg,
		crashDump: *crashDump, softDeadline: *softDeadline,
		workers: par.Workers(*workers)}); err != nil {
		fmt.Fprintln(os.Stderr, "bgpvr:", err)
		os.Exit(1)
	}
}

// patternize turns a path into a per-frame pattern: a path already
// containing a %d verb is kept, otherwise a frame number is inserted
// before the extension.
func patternize(path string) string {
	if strings.Contains(path, "%") {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-%04d" + ext
}

func parseFormat(s string) (core.Format, error) {
	switch s {
	case "generate":
		return core.FormatGenerate, nil
	case "raw":
		return core.FormatRaw, nil
	case "netcdf":
		return core.FormatNetCDF, nil
	case "cdf5":
		return core.FormatCDF5, nil
	case "h5":
		return core.FormatH5, nil
	}
	return 0, fmt.Errorf("unknown format %q", s)
}

// runArgs carries the parsed CLI flags.
type runArgs struct {
	mode               string
	n, imgSize         int
	procs, m           int
	format, path       string
	algo               string
	persp, shaded      bool
	window             int64
	ghostExchange      bool
	frames             int
	out                string
	traceOut           string
	breakdown          bool
	critpath           string
	debugAddr          string
	perfReport         string
	linkmap            string
	runRecord          string
	flowsimEps         float64 // -flowsim-approx: < 0 off, 0 exact, > 0 eps
	flowsimEndpointAgg bool
	crashDump          string
	softDeadline       time.Duration
	workers            int // resolved pool width (par.Workers already applied)
}

// critTopK is how many straggler ranks each phase reports.
const critTopK = 5

// analyze assembles the critical-path analysis from whichever source
// the mode produced: the model's prebuilt graph, or the real runtime's
// trace plus dependency recorder. Returns nil when recording was off.
func analyze(g *critpath.Graph, tr *trace.Tracer, rec *critpath.Recorder) *critpath.Analysis {
	if g == nil {
		if rec == nil {
			return nil
		}
		g = critpath.FromTrace(tr, rec)
	}
	return critpath.Analyze(g, critTopK)
}

// finishTrace exports whatever the flags asked for after a traced run.
func finishTrace(a runArgs, tr *trace.Tracer) error {
	if tr == nil {
		return nil
	}
	if a.traceOut != "" {
		if err := tr.WriteChromeFile(a.traceOut); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("  trace:      %s (open in chrome://tracing or Perfetto)\n", a.traceOut)
	}
	if a.breakdown {
		fmt.Print(tr.Breakdown().Table())
	}
	return nil
}

// finishRun exports the trace artifacts, the critical-path analysis,
// and, when asked, the merged perf report (trace breakdown +
// network/I/O telemetry + critpath/imbalance + runtime stats + the
// run's configuration).
func finishRun(a runArgs, tr *trace.Tracer, nt *telemetry.NetTelemetry, an *critpath.Analysis, fs *telemetry.FlowsimStat, totalSec float64, wallStart time.Time) error {
	if err := finishTrace(a, tr); err != nil {
		return err
	}
	if a.critpath != "" && an != nil {
		fmt.Print(an.Text())
		if err := an.WriteFile(a.critpath); err != nil {
			return fmt.Errorf("writing critpath analysis: %w", err)
		}
		fmt.Printf("  critpath:   %s\n", a.critpath)
	}
	if a.perfReport == "" && a.runRecord == "" {
		return nil
	}
	r := telemetry.NewReport("bgpvr-" + a.mode)
	r.Config = map[string]string{
		"mode":   a.mode,
		"n":      strconv.Itoa(a.n),
		"img":    strconv.Itoa(a.imgSize),
		"procs":  strconv.Itoa(a.procs),
		"m":      strconv.Itoa(a.m),
		"format": a.format,
		"algo":   a.algo,
	}
	r.TotalSec = totalSec
	if tr != nil {
		r.AddBreakdown(tr.Breakdown())
	}
	r.AddNetTelemetry(nt)
	r.AddCritPath(an)
	r.Flowsim = fs
	r.AddRuntime(time.Since(wallStart).Seconds())
	busy, wall := par.Stats()
	r.AddParallel(a.workers, busy.Seconds(), wall.Seconds())
	if a.perfReport != "" {
		if err := r.WriteFile(a.perfReport); err != nil {
			return fmt.Errorf("writing perf report: %w", err)
		}
		fmt.Printf("  perf report: %s\n", a.perfReport)
	}
	if a.runRecord != "" {
		rec := runstore.NewRecord(r, runstore.GitRev(), time.Now().UTC().Format(time.RFC3339))
		if err := runstore.Append(a.runRecord, rec); err != nil {
			return fmt.Errorf("recording run: %w", err)
		}
		fmt.Printf("  run record: %s (run %s)\n", a.runRecord, rec.ID)
	}
	return nil
}

// writeLinkmap exports the model-mode compositing phase's per-link
// contention map as CSV and PGM heatmaps plus a console summary.
func writeLinkmap(a runArgs, mach machine.Machine, nt *telemetry.NetTelemetry) error {
	top := mach.TorusFor(a.procs)
	csvPath, pgmPath, err := telemetry.WriteHeatmapFiles(a.linkmap, top, nt.Links, telemetry.MetricFlows)
	if err != nil {
		return fmt.Errorf("writing linkmap: %w", err)
	}
	fmt.Printf("  linkmap:    %s, %s\n", csvPath, pgmPath)
	fmt.Print(telemetry.UtilizationSummary(top, nt.Links))
	return nil
}

func run(a runArgs) error {
	mode, n, imgSize, procs, m := a.mode, a.n, a.imgSize, a.procs, a.m
	format, path, algo, persp, window, out := a.format, a.path, a.algo, a.persp, a.window, a.out
	ghostExchange := a.ghostExchange
	f, err := parseFormat(format)
	if err != nil {
		return err
	}
	scene := core.DefaultScene(n, imgSize)
	scene.Perspective = persp
	scene.Shaded = a.shaded
	scene.RenderWorkers = a.workers
	hints := mpiio.Hints{CBBufferSize: window}

	wantReport := a.perfReport != "" || a.runRecord != ""
	wantCrit := a.critpath != "" || wantReport || a.debugAddr != ""
	wantTrace := a.traceOut != "" || a.breakdown || wantReport || (wantCrit && mode != "model")
	wantNet := wantReport || a.linkmap != "" || a.debugAddr != ""
	if a.linkmap != "" && mode != "model" {
		return fmt.Errorf("-linkmap requires -mode model")
	}
	if a.flowsimEps >= 0 && mode != "model" {
		return fmt.Errorf("-flowsim-approx requires -mode model")
	}
	var nt *telemetry.NetTelemetry
	if wantNet {
		nt = &telemetry.NetTelemetry{}
	}
	var tr *trace.Tracer
	if wantTrace {
		if mode == "model" {
			tr = trace.NewVirtual(1)
		} else {
			tr = trace.New(procs)
		}
	}
	// critA holds the finished frame's critical-path analysis for the
	// debug endpoint; /critpath answers 503 until the run completes.
	var critA atomic.Pointer[critpath.Analysis]
	if a.debugAddr != "" {
		srv, err := telemetry.StartDebug(a.debugAddr, telemetry.DebugSource{
			Tracer: tr, Net: nt,
			Crit:     func() *critpath.Analysis { return critA.Load() },
			RunsPath: a.runRecord,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/ (pprof, expvar, /telemetry, /metrics, /critpath, /runs)\n", srv.Addr)
	}
	wallStart := time.Now()
	obs.Note("bgpvr run: mode=%s n=%d img=%d procs=%d m=%d format=%s algo=%s workers=%d",
		mode, n, imgSize, procs, m, format, algo, a.workers)
	if a.crashDump != "" || a.softDeadline > 0 {
		// The flight recorder: a kill (or the soft deadline) dumps recent
		// events, phase progress, metrics, and goroutine stacks to the
		// crash file, plus a best-effort partial perf report so even a
		// killed run leaves machine-readable evidence.
		wd := obs.StartWatchdog(obs.WatchdogConfig{
			Path:         a.crashDump,
			SoftDeadline: a.softDeadline,
			Extra: func(w io.Writer) {
				if a.perfReport == "" {
					return
				}
				r := telemetry.NewReport("bgpvr-" + a.mode)
				r.Config = map[string]string{"mode": a.mode, "partial": "true"}
				if tr != nil {
					r.AddBreakdown(tr.Breakdown())
				}
				r.AddNetTelemetry(nt)
				r.AddRuntime(time.Since(wallStart).Seconds())
				busy, wallT := par.Stats()
				r.AddParallel(a.workers, busy.Seconds(), wallT.Seconds())
				if err := r.WriteFile(a.perfReport); err != nil {
					fmt.Fprintf(w, "\npartial perf report: write failed: %v\n", err)
					return
				}
				fmt.Fprintf(w, "\npartial perf report written to %s\n", a.perfReport)
			},
		})
		defer wd.Stop()
	}

	switch mode {
	case "model":
		mach := machine.NewBGP()
		var cg *critpath.Graph
		if wantCrit {
			cg = critpath.NewGraph(procs)
		}
		res, err := core.RunModel(core.ModelConfig{
			Scene: scene, Procs: procs, Compositors: m, Format: f, Hints: hints,
			Machine: mach, Trace: tr, Net: nt, CritPath: cg})
		if err != nil {
			return err
		}
		an := analyze(cg, nil, nil)
		critA.Store(an)
		fmt.Printf("model frame: %d^3 volume, %d^2 image, %d cores, format %v\n", n, imgSize, procs, f)
		fmt.Printf("  I/O:        %s (%.1f%%)  read bw %s\n",
			stats.Seconds(res.Times.IO), core.Percent(res.Times.IO, res.Times.Total), stats.Rate(res.ReadBW))
		fmt.Printf("  render:     %s (%.1f%%)\n",
			stats.Seconds(res.Times.Render), core.Percent(res.Times.Render, res.Times.Total))
		fmt.Printf("  composite:  %s (%.1f%%)  %d messages, mean %.0f B\n",
			stats.Seconds(res.Times.Composite), core.Percent(res.Times.Composite, res.Times.Total),
			res.Messages, res.MeanMessageBytes)
		fmt.Printf("  total:      %s\n", stats.Seconds(res.Times.Total))
		if f != core.FormatGenerate {
			fmt.Printf("  physical I/O: %s in %d accesses (density %.3f)\n",
				stats.Bytes(res.IO.PhysicalBytes), res.IO.Accesses, res.IO.Density())
		}
		var fs *telemetry.FlowsimStat
		if a.flowsimEps >= 0 {
			pt, err := bench.FlowScaleAt(mach, scene, bench.FlowScaleConfig{
				Procs: procs, M: m, Eps: a.flowsimEps, Workers: a.workers,
				EndpointAgg: a.flowsimEndpointAgg,
			})
			if err != nil {
				return err
			}
			fs = pt.Stat(a.flowsimEps, a.workers)
			kernel, errKind := "exact kernel", "vs exact"
			if a.flowsimEps > 0 {
				kernel = fmt.Sprintf("eps=%g", a.flowsimEps)
				if !pt.ErrExact {
					errKind = "bound gap"
				}
			}
			fmt.Printf("  flowsim:    composite %s wire-level (%s, %d msgs, err %.4f %s, wall %s)\n",
				stats.Seconds(pt.ApproxSec), kernel, pt.Msgs, pt.ObservedErr, errKind,
				stats.Seconds(pt.WallSec))
		}
		if a.linkmap != "" {
			if err := writeLinkmap(a, mach, nt); err != nil {
				return err
			}
		}
		return finishRun(a, tr, nt, an, fs, res.Times.Total, wallStart)

	case "real":
		var rec *critpath.Recorder
		if wantCrit {
			rec = critpath.NewRecorder(tr, 1<<16)
		}
		cfg := core.RealConfig{Scene: scene, Procs: procs, Compositors: m, Format: f,
			Hints: hints, GhostExchange: ghostExchange, Trace: tr, Net: nt, CritPath: rec}
		switch algo {
		case "direct":
			cfg.Algo = core.CompositeDirectSend
		case "binaryswap":
			cfg.Algo = core.CompositeBinarySwap
		case "radixk":
			cfg.Algo = core.CompositeRadixK
		case "gather":
			cfg.Algo = core.CompositeSerialGather
		default:
			return fmt.Errorf("unknown algorithm %q", algo)
		}
		if f != core.FormatGenerate {
			if path == "" {
				path = filepath.Join(os.TempDir(), fmt.Sprintf("bgpvr-%d-%v.dat", n, f))
			}
			if _, err := os.Stat(path); err != nil {
				fmt.Printf("writing %v time step to %s ...\n", f, path)
				if err := core.WriteSceneFile(path, f, scene); err != nil {
					return err
				}
			}
			cfg.Path = path
		}
		if a.frames > 1 {
			seqCfg := core.SequenceConfig{Base: cfg, Steps: a.frames, TimeDelta: 0.4}
			if f != core.FormatGenerate {
				seqCfg.PathPattern = patternize(cfg.Path)
				cfg.Path = ""
			}
			if out != "" {
				seqCfg.ImagePattern = patternize(out)
			}
			seq, err := core.RunSequence(seqCfg)
			if err != nil {
				return err
			}
			tot := seq.TotalTimes()
			fmt.Printf("sequence: %d frames, %d^3 volume, %d ranks\n", a.frames, n, procs)
			fmt.Printf("  totals: io=%s render=%s composite=%s\n",
				stats.Seconds(tot.IO), stats.Seconds(tot.Render), stats.Seconds(tot.Composite))
			for _, p := range seq.Images {
				fmt.Println("  image:", p)
			}
			an := analyze(nil, tr, rec)
			critA.Store(an)
			return finishRun(a, tr, nt, an, nil, tot.Total, wallStart)
		}
		res, err := core.RunReal(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("real frame: %d^3 volume, %d^2 image, %d ranks, format %v, algo %s\n",
			n, imgSize, procs, f, algo)
		fmt.Printf("  I/O:        %s\n", stats.Seconds(res.Times.IO))
		fmt.Printf("  render:     %s  (%d samples, imbalance %.2f)\n",
			stats.Seconds(res.Times.Render), res.Samples, res.SampleBalance)
		fmt.Printf("  composite:  %s  (%d messages, %s)\n",
			stats.Seconds(res.Times.Composite), res.Traffic.Messages, stats.Bytes(res.Traffic.TotalBytes))
		fmt.Printf("  total:      %s\n", stats.Seconds(res.Times.Total))
		if f != core.FormatGenerate {
			fmt.Printf("  physical I/O: %s in %d accesses (density %.3f)\n",
				stats.Bytes(res.IO.PhysicalBytes), res.IO.Accesses, res.IO.Density())
		}
		if out != "" {
			if err := res.Image.WritePPM(out, 0); err != nil {
				return err
			}
			fmt.Printf("  image:      %s\n", out)
		}
		an := analyze(nil, tr, rec)
		critA.Store(an)
		return finishRun(a, tr, nt, an, nil, res.Times.Total, wallStart)
	}
	return fmt.Errorf("unknown mode %q", mode)
}
