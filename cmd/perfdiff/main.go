// Command perfdiff compares two perf reports written by -perf-report
// (schema telemetry.ReportSchema) and flags regressions across three
// metric classes: timing (total and per-phase mean seconds), counters
// (messages, bytes, physical accesses, tree ops), and imbalance
// (per-phase max/mean busy-time ratios plus the critical-path
// duration). CI runs it against a checked-in baseline so a PR that
// slows a modeled frame down — or distributes its load worse while
// the mean stays flat — is visible in the job log.
//
// Usage:
//
//	perfdiff [-threshold 10] [-only timing|counters|imbalance|all] [-warn] old.json new.json
//
// Exit status: 0 when no metric regressed (or -warn is set), 2 when at
// least one did, 1 on usage or read errors (including a schema
// mismatch between the two reports).
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpvr/internal/stats"
	"bgpvr/internal/telemetry"
)

func value(d telemetry.Delta, v float64) string {
	switch d.Unit {
	case "s":
		return stats.Seconds(v)
	case "ratio":
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.0f", v)
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	only := flag.String("only", "all", "metric classes to diff: timing, counters, imbalance, all")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI warn-only mode)")
	flag.Parse()
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-threshold pct] [-only timing|counters|imbalance|all] [-warn] old.json new.json")
		os.Exit(1)
	}
	if flag.NArg() != 2 {
		usage()
	}
	switch *only {
	case "timing", "counters", "imbalance", "all":
	default:
		usage()
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(1)
	}
	old, err := telemetry.ReadReport(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cur, err := telemetry.ReadReport(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	th := *threshold / 100
	var deltas []telemetry.Delta
	if *only == "all" || *only == "timing" {
		deltas = append(deltas, telemetry.CompareReports(old, cur, th)...)
	}
	if *only == "all" || *only == "counters" {
		deltas = append(deltas, telemetry.CompareCounters(old, cur, th)...)
	}
	if *only == "all" || *only == "imbalance" {
		deltas = append(deltas, telemetry.CompareImbalance(old, cur, th)...)
	}
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-32s %12s -> %12s  %+6.1f%%%s\n",
			d.Metric, value(d, d.Old), value(d, d.New), 100*d.Change(), mark)
	}
	if regressions > 0 {
		fmt.Printf("%d metric(s) regressed beyond %.0f%% (%s vs %s)\n",
			regressions, *threshold, flag.Arg(0), flag.Arg(1))
		if !*warn {
			os.Exit(2)
		}
		fmt.Println("warn-only mode: not failing")
	}
}
