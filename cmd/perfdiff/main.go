// Command perfdiff compares two perf reports written by -perf-report
// (schema telemetry.ReportSchema) and flags regressions across four
// metric classes: timing (total and per-phase mean seconds), counters
// (messages, bytes, physical accesses, tree ops), imbalance (per-phase
// max/mean busy-time ratios plus the critical-path duration), fidelity
// (the paper-fidelity aggregate score dropping or any individual
// claim's pass/warn/fail status getting worse), flowsim (the
// clustered contention approximation's observed error growing or
// breaking its own requested eps bound), and service (a render-service
// load test's p99 latency rising, throughput falling, or error rate
// climbing at any matched concurrency level). CI runs it
// against checked-in baselines so a PR that slows a modeled frame
// down, distributes its load worse, or drifts away from the paper's
// published curves is visible in the job log.
//
// Usage:
//
//	perfdiff [-threshold 10] [-only timing|counters|imbalance|fidelity|flowsim|service|all] [-warn] old.json new.json
//	perfdiff [flags] reports-dir
//
// The one-argument form takes a directory of perf reports and diffs
// the newest against the previous one (by modification time, names
// breaking ties) — the hands-off mode for a directory that a CI job or
// a run registry keeps appending reports to.
//
// Exit status: 0 when no metric regressed (or -warn is set), 2 when at
// least one did, 1 on usage or read errors (including a schema
// mismatch between the two reports).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bgpvr/internal/stats"
	"bgpvr/internal/telemetry"
)

func value(d telemetry.Delta, v float64) string {
	switch d.Unit {
	case "s":
		return stats.Seconds(v)
	case "ratio":
		return fmt.Sprintf("%.3f", v)
	case "score":
		return fmt.Sprintf("%.3f", v)
	case "status":
		return [...]string{"pass", "warn", "fail"}[int(v)]
	}
	return fmt.Sprintf("%.0f", v)
}

// newestPair returns the two most recent perf reports in dir, old
// first: ordered by modification time with the file name breaking
// ties.
func newestPair(dir string) (old, new string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	type candidate struct {
		path string
		mod  int64
	}
	var cands []candidate
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return "", "", err
		}
		cands = append(cands, candidate{filepath.Join(dir, e.Name()), info.ModTime().UnixNano()})
	}
	if len(cands) < 2 {
		return "", "", fmt.Errorf("%s holds %d perf report(s), need at least 2", dir, len(cands))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mod != cands[j].mod {
			return cands[i].mod < cands[j].mod
		}
		return cands[i].path < cands[j].path
	})
	return cands[len(cands)-2].path, cands[len(cands)-1].path, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	only := flag.String("only", "all", "metric classes to diff: timing, counters, imbalance, fidelity, flowsim, service, all")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI warn-only mode)")
	flag.Parse()
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-threshold pct] [-only timing|counters|imbalance|fidelity|flowsim|service|all] [-warn] old.json new.json")
		fmt.Fprintln(os.Stderr, "       perfdiff [flags] reports-dir   (diffs the two newest reports)")
		os.Exit(1)
	}
	switch *only {
	case "timing", "counters", "imbalance", "fidelity", "flowsim", "service", "all":
	default:
		usage()
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(1)
	}
	var oldPath, newPath string
	switch flag.NArg() {
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	case 1:
		info, err := os.Stat(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		if !info.IsDir() {
			usage()
		}
		if oldPath, newPath, err = newestPair(flag.Arg(0)); err != nil {
			fail(err)
		}
		fmt.Printf("diffing newest vs previous in %s:\n  old: %s\n  new: %s\n", flag.Arg(0), oldPath, newPath)
	default:
		usage()
	}
	old, err := telemetry.ReadReport(oldPath)
	if err != nil {
		fail(err)
	}
	cur, err := telemetry.ReadReport(newPath)
	if err != nil {
		fail(err)
	}
	th := *threshold / 100
	var deltas []telemetry.Delta
	if *only == "all" || *only == "timing" {
		deltas = append(deltas, telemetry.CompareReports(old, cur, th)...)
	}
	if *only == "all" || *only == "counters" {
		deltas = append(deltas, telemetry.CompareCounters(old, cur, th)...)
	}
	if *only == "all" || *only == "imbalance" {
		deltas = append(deltas, telemetry.CompareImbalance(old, cur, th)...)
	}
	if *only == "all" || *only == "fidelity" {
		deltas = append(deltas, telemetry.CompareFidelity(old, cur, th)...)
	}
	if *only == "all" || *only == "flowsim" {
		deltas = append(deltas, telemetry.CompareFlowsim(old, cur, th)...)
	}
	if *only == "all" || *only == "service" {
		deltas = append(deltas, telemetry.CompareService(old, cur, th)...)
	}
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		change := fmt.Sprintf("%+6.1f%%", 100*d.Change())
		if d.Unit == "status" { // a rank flip, not a percentage
			change = "      -"
		}
		fmt.Printf("%-32s %12s -> %12s  %s%s\n",
			d.Metric, value(d, d.Old), value(d, d.New), change, mark)
	}
	if regressions > 0 {
		fmt.Printf("%d metric(s) regressed beyond %.0f%% (%s vs %s)\n",
			regressions, *threshold, oldPath, newPath)
		if !*warn {
			os.Exit(2)
		}
		fmt.Println("warn-only mode: not failing")
	}
}
