// Command perfdiff compares two perf reports written by -perf-report
// (schema telemetry.ReportSchema) and flags regressions: timing
// metrics present in both reports that got slower by more than the
// threshold. CI runs it against a checked-in baseline so a PR that
// slows a modeled frame down is visible in the job log.
//
// Usage:
//
//	perfdiff [-threshold 10] [-warn] old.json new.json
//
// Exit status: 0 when no metric regressed (or -warn is set), 2 when at
// least one did, 1 on usage or read errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpvr/internal/stats"
	"bgpvr/internal/telemetry"
)

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (CI warn-only mode)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: perfdiff [-threshold pct] [-warn] old.json new.json")
		os.Exit(1)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "perfdiff:", err)
		os.Exit(1)
	}
	old, err := telemetry.ReadReport(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cur, err := telemetry.ReadReport(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	deltas := telemetry.CompareReports(old, cur, *threshold/100)
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-28s %12s -> %12s  %+6.1f%%%s\n",
			d.Metric, stats.Seconds(d.Old), stats.Seconds(d.New), 100*d.Change(), mark)
	}
	if regressions > 0 {
		fmt.Printf("%d metric(s) regressed beyond %.0f%% (%s vs %s)\n",
			regressions, *threshold, flag.Arg(0), flag.Arg(1))
		if !*warn {
			os.Exit(2)
		}
		fmt.Println("warn-only mode: not failing")
	}
}
