// Command upsample is the paper's §IV-B preprocessing step: it
// trilinearly upsamples a raw volume in parallel with collective reads
// and writes ("we upsampled the existing supernova raw data format ...
// efficiently, in parallel, with ... collective I/O"), producing the
// larger time steps the scaling study renders.
//
//	upsample -in step.raw -n 128 -factor 2 -out step2240.raw -procs 8
//
// With -generate, a synthetic supernova source of size n^3 is written
// first, so the tool is runnable without any input data.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bgpvr/internal/core"
	"bgpvr/internal/grid"
	"bgpvr/internal/rawfmt"
	"bgpvr/internal/stats"
	"bgpvr/internal/volume"
)

func main() {
	in := flag.String("in", "", "input raw file (n^3 float32)")
	n := flag.Int("n", 0, "input grid size n^3")
	factor := flag.Int("factor", 2, "upsampling factor")
	out := flag.String("out", "upsampled.raw", "output raw file")
	procs := flag.Int("procs", 8, "parallel ranks")
	generate := flag.Bool("generate", false, "synthesize the input first")
	flag.Parse()

	if err := run(*in, *n, *factor, *out, *procs, *generate); err != nil {
		fmt.Fprintln(os.Stderr, "upsample:", err)
		os.Exit(1)
	}
}

func run(in string, n, factor int, out string, procs int, generate bool) error {
	if n <= 0 {
		return fmt.Errorf("-n is required")
	}
	dims := grid.Cube(n)
	if generate {
		if in == "" {
			in = fmt.Sprintf("supernova-%d.raw", n)
		}
		fmt.Printf("generating %d^3 synthetic supernova -> %s\n", n, in)
		sn := volume.Supernova{Seed: 1530, Time: 1.1}
		if err := rawfmt.WriteFunc(in, dims, func(x, y, z int) float32 {
			return sn.Eval(volume.VarVelocityX, dims, x, y, z)
		}); err != nil {
			return err
		}
	}
	if in == "" {
		return fmt.Errorf("-in is required (or use -generate)")
	}
	start := time.Now()
	dst, err := core.RunUpsample(core.UpsampleConfig{
		SrcDims: dims, Factor: factor, Procs: procs, SrcPath: in, DstPath: out,
	})
	if err != nil {
		return err
	}
	el := time.Since(start).Seconds()
	outBytes := rawfmt.FileSize(dst)
	fmt.Printf("upsampled %d^3 -> %d^3 with %d ranks in %s (%s written, %s)\n",
		n, dst.X, procs, stats.Seconds(el), stats.Bytes(outBytes),
		stats.Rate(float64(outBytes)/el))
	return nil
}
