// Command experiments regenerates every table and figure of the paper's
// evaluation on the Blue Gene/P machine model and prints the reports.
//
// Usage:
//
//	experiments [-exp all|table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|table2|ablations|crossmachine]
//
// The output rows mirror what the paper plots; EXPERIMENTS.md records
// the side-by-side comparison against the published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bgpvr/internal/bench"
	"bgpvr/internal/machine"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig3..fig10, table2, ablations)")
	flag.Parse()

	mach := machine.NewBGP()
	want := func(name string) bool { return *exp == "all" || *exp == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	section := func(s string) {
		fmt.Println(s)
		fmt.Println(strings.Repeat("-", 72))
	}

	ran := false
	if want("table1") {
		ran = true
		section(bench.Table1())
	}
	if want("fig3") {
		ran = true
		_, s, err := bench.Fig3(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig4") {
		ran = true
		_, s, err := bench.Fig4(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig5") {
		ran = true
		_, s, err := bench.Fig5(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("table2") {
		ran = true
		_, s, err := bench.Table2(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig6") {
		ran = true
		_, s, err := bench.Fig6(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig7") {
		ran = true
		_, s, err := bench.Fig7(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig8") {
		ran = true
		s, err := bench.Fig8(1120)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig9") {
		ran = true
		_, s, err := bench.Fig9(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig10") {
		ran = true
		_, s, err := bench.Fig10(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("preprocess") {
		ran = true
		s, err := bench.PreprocessModel(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("iosig") {
		ran = true
		s, err := bench.IOSignature(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("crossmachine") {
		ran = true
		s, err := bench.CrossMachine()
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("ablations") {
		ran = true
		_, s, err := bench.AblationCompositors(mach, 16384)
		if err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationCompositeAlgo(mach); err != nil {
			fail(err)
		}
		section(s)
		if _, s, err = bench.AblationCBBuffer(mach); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationContention(mach); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationAggregators(mach); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationPlacement(mach, 16384); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationNetworkModel(mach); err != nil {
			fail(err)
		}
		section(s)
	}
	if !ran {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
}
