// Command experiments regenerates every table and figure of the paper's
// evaluation on the Blue Gene/P machine model and prints the reports.
//
// Usage:
//
//	experiments [-exp all|table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|table2|ablations|crossmachine]
//	experiments -exp fidelity [-scorecard card.json] [-perf-report rep.json] [-run-record runs.jsonl]
//	experiments -exp flowscale [-procs 131072] [-flowsim-approx 0.25] [-flowsim-endpoint-agg] [-workers 4] [-n 256] [-img 1024]
//	experiments -breakdown [-procs 16384] [-trace frame.json]
//
// The output rows mirror what the paper plots; EXPERIMENTS.md records
// the side-by-side comparison against the published numbers. -exp
// fidelity scores the regenerated Fig 3-7 and Table II results against
// the paper's published values and shape claims (internal/fidelity)
// and prints the per-claim scorecard. -exp flowscale streams the
// direct-send compositing exchange through the max-min contention
// kernel at -procs scale — exactly, or with the bounded-error
// clustered approximation when -flowsim-approx eps > 0 — after
// re-validating the approximation against the exact kernel at small
// core counts; the scale point's observed error lands in the perf
// report's flowsim section. The last form traces one
// end-to-end model frame of the paper's base configuration (1120^3
// volume, 1600^2 image, raw format) instead: -breakdown prints the
// Fig 5-7 per-phase table and -trace writes the virtual timeline as
// Chrome trace_event JSON. -run-record appends the run's perf report
// to the append-only JSONL run registry that cmd/perfhistory trends.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bgpvr/internal/bench"
	"bgpvr/internal/core"
	"bgpvr/internal/critpath"
	"bgpvr/internal/fidelity"
	"bgpvr/internal/machine"
	"bgpvr/internal/obs"
	"bgpvr/internal/par"
	"bgpvr/internal/runstore"
	"bgpvr/internal/stats"
	"bgpvr/internal/telemetry"
	"bgpvr/internal/trace"
)

// record appends the report to the JSONL run registry at path.
func record(path string, r *telemetry.Report) error {
	rec := runstore.NewRecord(r, runstore.GitRev(), time.Now().UTC().Format(time.RFC3339))
	if err := runstore.Append(path, rec); err != nil {
		return fmt.Errorf("recording run: %w", err)
	}
	fmt.Printf("run record: %s (run %s)\n", path, rec.ID)
	return nil
}

// fidelityRun regenerates the paper's exhibits, scores them against
// the published claims, and exports whatever the flags asked for. It
// returns the scorecard's report section for the debug endpoint.
func fidelityRun(mach machine.Machine, workers int, scorecardOut, perfReport, runRecord string) (*telemetry.FidelityStat, error) {
	wallStart := time.Now()
	sc, err := fidelity.Evaluate(mach)
	if err != nil {
		return nil, err
	}
	fmt.Print(sc.Text())
	stat := sc.Stat()
	if scorecardOut != "" {
		if err := sc.WriteFile(scorecardOut); err != nil {
			return stat, fmt.Errorf("writing scorecard: %w", err)
		}
		fmt.Printf("scorecard: %s\n", scorecardOut)
	}
	if perfReport == "" && runRecord == "" {
		return stat, nil
	}
	r := telemetry.NewReport("experiments-fidelity")
	r.Config = map[string]string{"exp": "fidelity", "machine": "bgp"}
	r.Fidelity = stat
	r.AddRuntime(time.Since(wallStart).Seconds())
	busy, wall := par.Stats()
	r.AddParallel(workers, busy.Seconds(), wall.Seconds())
	if perfReport != "" {
		if err := r.WriteFile(perfReport); err != nil {
			return stat, fmt.Errorf("writing perf report: %w", err)
		}
		fmt.Printf("perf report: %s\n", perfReport)
	}
	if runRecord != "" {
		if err := record(runRecord, r); err != nil {
			return stat, err
		}
	}
	return stat, nil
}

// flowScaleRun streams the direct-send compositing exchange through
// the contention kernel at scale (bench.FlowScaleRun), prints the
// wire-level Fig-4 view, and exports the scale point's flowsim section
// when a perf report or run record was asked for.
func flowScaleRun(mach machine.Machine, n, imgSize int, cfg bench.FlowScaleConfig, perfReport, runRecord string) error {
	wallStart := time.Now()
	scene := core.DefaultScene(n, imgSize)
	pts, text, err := bench.FlowScaleRun(mach, scene, cfg)
	if err != nil {
		return err
	}
	fmt.Println(text)
	if perfReport == "" && runRecord == "" {
		return nil
	}
	pt := pts[len(pts)-1]
	r := telemetry.NewReport("experiments-flowscale")
	r.Config = map[string]string{
		"exp":   "flowscale",
		"n":     strconv.Itoa(n),
		"img":   strconv.Itoa(imgSize),
		"procs": strconv.Itoa(cfg.Procs),
		"eps":   strconv.FormatFloat(cfg.Eps, 'g', -1, 64),
	}
	if cfg.EndpointAgg {
		r.Config["endpoint_agg"] = "true"
	}
	r.TotalSec = pt.ApproxSec
	r.Flowsim = pt.Stat(cfg.Eps, cfg.Workers)
	r.AddRuntime(time.Since(wallStart).Seconds())
	busy, wall := par.Stats()
	r.AddParallel(cfg.Workers, busy.Seconds(), wall.Seconds())
	if perfReport != "" {
		if err := r.WriteFile(perfReport); err != nil {
			return fmt.Errorf("writing perf report: %w", err)
		}
		fmt.Printf("perf report: %s\n", perfReport)
	}
	if runRecord != "" {
		if err := record(runRecord, r); err != nil {
			return err
		}
	}
	return nil
}

// tracedFrame runs one model-mode frame of the paper's base workload
// with a virtual tracer (and, when asked, a causal event graph) and
// exports what the flags asked for. It returns the critical-path
// analysis (nil when no flag wanted one) for the debug endpoint.
func tracedFrame(n, imgSize, procs, workers int, traceOut string, breakdown bool, perfReport, critOut, runRecord string) (*critpath.Analysis, error) {
	wallStart := time.Now()
	tr := trace.NewVirtual(1)
	wantReport := perfReport != "" || runRecord != ""
	var nt *telemetry.NetTelemetry
	if wantReport {
		nt = &telemetry.NetTelemetry{}
	}
	var cg *critpath.Graph
	if critOut != "" || wantReport {
		cg = critpath.NewGraph(procs)
	}
	scene := core.DefaultScene(n, imgSize)
	scene.RenderWorkers = workers
	res, err := core.RunModel(core.ModelConfig{
		Scene:    scene,
		Procs:    procs,
		Format:   core.FormatRaw,
		Trace:    tr,
		Net:      nt,
		CritPath: cg,
	})
	if err != nil {
		return nil, err
	}
	var an *critpath.Analysis
	if cg != nil {
		an = critpath.Analyze(cg, 5)
	}
	fmt.Printf("model frame: %d^3 volume, %d^2 image, %d cores, total %s\n",
		n, imgSize, procs, stats.Seconds(res.Times.Total))
	if breakdown {
		fmt.Print(tr.Breakdown().Table())
	}
	if traceOut != "" {
		if err := tr.WriteChromeFile(traceOut); err != nil {
			return an, fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("trace: %s (open in chrome://tracing or Perfetto)\n", traceOut)
	}
	if critOut != "" {
		fmt.Print(an.Text())
		if err := an.WriteFile(critOut); err != nil {
			return an, fmt.Errorf("writing critpath analysis: %w", err)
		}
		fmt.Printf("critpath: %s\n", critOut)
	}
	if wantReport {
		r := telemetry.NewReport("experiments-frame")
		r.Config = map[string]string{
			"mode":   "model",
			"n":      strconv.Itoa(n),
			"img":    strconv.Itoa(imgSize),
			"procs":  strconv.Itoa(procs),
			"format": "raw",
		}
		r.TotalSec = res.Times.Total
		r.AddBreakdown(tr.Breakdown())
		r.AddNetTelemetry(nt)
		r.AddCritPath(an)
		r.AddRuntime(time.Since(wallStart).Seconds())
		busy, wall := par.Stats()
		r.AddParallel(workers, busy.Seconds(), wall.Seconds())
		if perfReport != "" {
			if err := r.WriteFile(perfReport); err != nil {
				return an, fmt.Errorf("writing perf report: %w", err)
			}
			fmt.Printf("perf report: %s\n", perfReport)
		}
		if runRecord != "" {
			if err := record(runRecord, r); err != nil {
				return an, err
			}
		}
	}
	return an, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig3..fig10, table2, ablations, linkmap, imbalance, fidelity, flowscale)")
	traceOut := flag.String("trace", "", "trace one base-config model frame to this Chrome trace_event JSON instead of running experiments")
	breakdown := flag.Bool("breakdown", false, "print the traced frame's per-phase breakdown table instead of running experiments")
	procs := flag.Int("procs", 16384, "cores for the traced frame (-trace/-breakdown) or -exp linkmap")
	n := flag.Int("n", 1120, "volume grid size n^3 for the traced frame")
	imgSize := flag.Int("img", 1600, "image size for the traced frame")
	perfReport := flag.String("perf-report", "", "write the run's perf report (breakdown + telemetry + runtime; -exp fidelity: the scorecard) to this JSON file")
	critOut := flag.String("critpath", "", "print the traced frame's critical-path & load-imbalance report and write the analysis JSON to this file")
	debugAddr := flag.String("debug-addr", "", "serve a live debug endpoint (net/http/pprof, expvar, /telemetry, /critpath, /fidelity, /runs) while running")
	scorecardOut := flag.String("scorecard", "", "write the fidelity scorecard JSON to this file (-exp fidelity)")
	runRecord := flag.String("run-record", "", "append this run's perf report to the JSONL run registry (see cmd/perfhistory)")
	workers := flag.Int("workers", 0, "worker goroutines for the sweep and render loops (0 = all cores)")
	flowsimApprox := flag.Float64("flowsim-approx", 0, "clustered-contention error bound eps for -exp flowscale (0 = exact kernel)")
	flowsimEndpointAgg := flag.Bool("flowsim-endpoint-agg", false, "with -flowsim-approx, also pool endpoint-region interior hops onto the regional aggregates (only injection/ejection hops stay physical); engages above the decomposition's floor")
	progress := flag.Bool("progress", false, "emit periodic structured progress heartbeats (phase done/total, rate, ETA) to stderr")
	progressInterval := flag.Duration("progress-interval", obs.DefaultHeartbeatInterval, "heartbeat period for -progress")
	crashDump := flag.String("crash-dump", "", "write a flight record (recent events, phase progress, metrics, goroutine stacks) to this file on SIGQUIT/SIGTERM or -soft-deadline, then exit")
	softDeadline := flag.Duration("soft-deadline", 0, "dump the flight record and exit this long after start; set it just below an external kill budget so the run leaves a post-mortem (0 disables)")
	flag.Parse()

	w := par.Workers(*workers)
	bench.Workers = w
	mach := machine.NewBGP()
	want := func(name string) bool { return *exp == "all" || *exp == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *progress {
		hb := obs.StartHeartbeat(slog.New(slog.NewTextHandler(os.Stderr, nil)), *progressInterval)
		defer hb.Stop()
	}
	wallStart := time.Now()
	obs.Note("experiments run: exp=%s procs=%d n=%d img=%d workers=%d eps=%g",
		*exp, *procs, *n, *imgSize, w, *flowsimApprox)
	if *crashDump != "" || *softDeadline > 0 {
		// Flight recorder: a kill or the soft deadline leaves a crash file
		// plus a best-effort partial perf report (runtime + pool stats —
		// the sweeps' own tables die with the run).
		wd := obs.StartWatchdog(obs.WatchdogConfig{
			Path:         *crashDump,
			SoftDeadline: *softDeadline,
			Extra: func(cw io.Writer) {
				if *perfReport == "" {
					return
				}
				r := telemetry.NewReport("experiments-" + *exp)
				r.Config = map[string]string{"exp": *exp, "partial": "true"}
				r.AddRuntime(time.Since(wallStart).Seconds())
				busy, wallT := par.Stats()
				r.AddParallel(w, busy.Seconds(), wallT.Seconds())
				if err := r.WriteFile(*perfReport); err != nil {
					fmt.Fprintf(cw, "\npartial perf report: write failed: %v\n", err)
					return
				}
				fmt.Fprintf(cw, "\npartial perf report written to %s\n", *perfReport)
			},
		})
		defer wd.Stop()
	}
	var critA atomic.Pointer[critpath.Analysis]
	var fidA atomic.Pointer[telemetry.FidelityStat]
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, telemetry.DebugSource{
			Crit:     func() *critpath.Analysis { return critA.Load() },
			Fidelity: func() *telemetry.FidelityStat { return fidA.Load() },
			RunsPath: *runRecord,
		})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/ (pprof, expvar, /telemetry, /critpath, /fidelity, /runs)\n", srv.Addr)
	}
	if *exp == "fidelity" {
		stat, err := fidelityRun(mach, w, *scorecardOut, *perfReport, *runRecord)
		fidA.Store(stat)
		if err != nil {
			fail(err)
		}
		return
	}
	if *exp == "flowscale" {
		cfg := bench.FlowScaleConfig{
			Procs: *procs, Eps: *flowsimApprox, Workers: w, EndpointAgg: *flowsimEndpointAgg,
		}
		if err := flowScaleRun(mach, *n, *imgSize, cfg, *perfReport, *runRecord); err != nil {
			fail(err)
		}
		return
	}
	if *traceOut != "" || *breakdown || *perfReport != "" || *critOut != "" || *runRecord != "" {
		an, err := tracedFrame(*n, *imgSize, *procs, w, *traceOut, *breakdown, *perfReport, *critOut, *runRecord)
		critA.Store(an)
		if err != nil {
			fail(err)
		}
		return
	}
	if *exp == "linkmap" {
		_, s, err := bench.LinkContention(mach, *procs)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		return
	}
	section := func(s string) {
		fmt.Println(s)
		fmt.Println(strings.Repeat("-", 72))
	}

	ran := false
	if want("table1") {
		ran = true
		section(bench.Table1())
	}
	if want("fig3") {
		ran = true
		_, s, err := bench.Fig3(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig4") {
		ran = true
		_, s, err := bench.Fig4(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig5") {
		ran = true
		_, s, err := bench.Fig5(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("table2") {
		ran = true
		_, s, err := bench.Table2(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig6") {
		ran = true
		_, s, err := bench.Fig6(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig7") {
		ran = true
		_, s, err := bench.Fig7(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig8") {
		ran = true
		s, err := bench.Fig8(1120)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig9") {
		ran = true
		_, s, err := bench.Fig9(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("fig10") {
		ran = true
		_, s, err := bench.Fig10(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("preprocess") {
		ran = true
		s, err := bench.PreprocessModel(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("iosig") {
		ran = true
		s, err := bench.IOSignature(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("imbalance") {
		ran = true
		_, s, err := bench.Imbalance(mach)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("crossmachine") {
		ran = true
		s, err := bench.CrossMachine()
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if want("ablations") {
		ran = true
		_, s, err := bench.AblationCompositors(mach, 16384)
		if err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationCompositeAlgo(mach); err != nil {
			fail(err)
		}
		section(s)
		if _, s, err = bench.AblationCBBuffer(mach); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationContention(mach); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationAggregators(mach); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationPlacement(mach, 16384); err != nil {
			fail(err)
		}
		section(s)
		if s, err = bench.AblationNetworkModel(mach); err != nil {
			fail(err)
		}
		section(s)
	}
	if !ran {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
}
