// Command perfhistory renders the run registry (internal/runstore,
// appended by -run-record) as per-metric trend tables: one line per
// tracked metric with a sparkline over the last N stored runs, the
// newest value, and a drift flag from a rolling changepoint test.
// Where cmd/perfdiff compares exactly two reports, perfhistory watches
// the whole trajectory, so a regression that creeps in over several
// PRs — each step below the pairwise threshold — still surfaces.
//
// Usage:
//
//	perfhistory [-last 20] [-minseg 2] [-threshold 10] [-fail] runs.jsonl
//
// Exit status: 0 normally, 2 with -fail when any metric drifted in the
// degrading direction, 1 on usage or read errors.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"bgpvr/internal/runstore"
	"bgpvr/internal/stats"
)

func fmtVal(unit string, v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch unit {
	case "s":
		return stats.Seconds(v)
	case "score":
		return fmt.Sprintf("%.3f", v)
	case "ratio":
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.0f", v)
}

func main() {
	last := flag.Int("last", 20, "number of most recent runs to analyze")
	minSeg := flag.Int("minseg", 2, "minimum runs on each side of a changepoint split")
	threshold := flag.Float64("threshold", 10, "drift threshold in percent")
	failOnDrift := flag.Bool("fail", false, "exit 2 when any metric drifts in the degrading direction")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: perfhistory [-last n] [-minseg n] [-threshold pct] [-fail] runs.jsonl")
		os.Exit(1)
	}
	recs, err := runstore.Read(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfhistory:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("run store is empty")
		return
	}
	if *last > 0 && len(recs) > *last {
		recs = recs[len(recs)-*last:]
	}
	first, latest := recs[0], recs[len(recs)-1]
	fmt.Printf("run history: %d runs, %s (%s) .. %s (%s)\n",
		len(recs), first.Time, first.GitRev, latest.Time, latest.GitRev)

	series := runstore.Metrics(recs)
	nameW := 0
	for _, s := range series {
		if s.Valid() >= 1 && len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	degraded := 0
	for _, s := range series {
		if s.Valid() < 1 {
			continue
		}
		flagTxt := ""
		cp := runstore.DetectChange(s.Values, *minSeg, *threshold/100)
		if cp != nil {
			dir := "improved"
			if runstore.Worse(s.Unit, cp.Shift) {
				dir = "DRIFT"
				degraded++
			}
			rev := "?"
			if cp.Index < len(recs) {
				rev = recs[cp.Index].GitRev
			}
			flagTxt = fmt.Sprintf("  %s %+.1f%% at run %d (%s): %s -> %s",
				dir, 100*cp.Shift, cp.Index+1, rev,
				fmtVal(s.Unit, cp.Before), fmtVal(s.Unit, cp.After))
		}
		fmt.Printf("%-*s  %-*s  latest %10s%s\n",
			nameW, s.Name, len(recs), stats.Sparkline(s.Values), fmtVal(s.Unit, s.Last()), flagTxt)
	}
	if degraded > 0 {
		fmt.Printf("%d metric(s) drifted beyond %.0f%% in the degrading direction\n", degraded, *threshold)
		if *failOnDrift {
			os.Exit(2)
		}
	}
}
