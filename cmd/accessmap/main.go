// Command accessmap visualizes the file access pattern of a collective
// read (the paper's Fig 9): which blocks of the file the two-phase
// optimizer physically reads when the application wants one variable of
// five. It prints ASCII shade maps and can write PGM images.
//
// The scenario is fixed to the paper's: the 1120^3 five-variable file
// read by 2K cores.
//
//	accessmap -pgm-dir ./maps
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bgpvr/internal/bench"
	"bgpvr/internal/img"
	"bgpvr/internal/machine"
)

func main() {
	pgmDir := flag.String("pgm-dir", "", "also write one PGM image per mode")
	flag.Parse()

	modes, report, err := bench.Fig9(machine.NewBGP())
	if err != nil {
		fmt.Fprintln(os.Stderr, "accessmap:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if *pgmDir == "" {
		return
	}
	if err := os.MkdirAll(*pgmDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "accessmap:", err)
		os.Exit(1)
	}
	for _, m := range modes {
		name := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '_'
			}
		}, m.Name)
		path := filepath.Join(*pgmDir, name+".pgm")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accessmap:", err)
			os.Exit(1)
		}
		w := len(m.Map) / m.Rows
		if err := img.EncodePGM(f, w, m.Rows, m.Map); err != nil {
			fmt.Fprintln(os.Stderr, "accessmap:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("wrote", path)
	}
}
