// Command iobench runs the paper's synthetic I/O benchmark (Fig 10) in
// both modes: real mode writes a small multivariate time step in each of
// the five formats and reads one variable back collectively, reporting
// measured time, physical bytes, access counts, and data density;
// model mode reports the same at the paper's 1120^3 / 2K-core scale.
//
//	iobench -n 48 -procs 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bgpvr/internal/bench"
	"bgpvr/internal/core"
	"bgpvr/internal/machine"
	"bgpvr/internal/mpiio"
	"bgpvr/internal/stats"
)

func main() {
	n := flag.Int("n", 48, "real-mode volume grid size n^3")
	procs := flag.Int("procs", 8, "real-mode ranks")
	skipModel := flag.Bool("skip-model", false, "skip the paper-scale model run")
	flag.Parse()
	if err := run(*n, *procs, !*skipModel); err != nil {
		fmt.Fprintln(os.Stderr, "iobench:", err)
		os.Exit(1)
	}
}

func run(n, procs int, model bool) error {
	scene := core.DefaultScene(n, 64)
	dir, err := os.MkdirTemp("", "iobench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Window sized so the record structure matters at this scale.
	rec := int64(n) * int64(n) * 4
	modes := []struct {
		name   string
		format core.Format
		window int64
	}{
		{"raw", core.FormatRaw, 0},
		{"new netCDF (CDF-5)", core.FormatCDF5, 0},
		{"h5lite", core.FormatH5, 0},
		{"tuned netCDF", core.FormatNetCDF, rec},
		{"untuned netCDF", core.FormatNetCDF, 4 * rec},
	}
	fmt.Printf("real mode: %d^3 volume, %d ranks, files under %s\n", n, procs, dir)
	fmt.Printf("%-20s %10s %12s %10s %8s\n", "mode", "read time", "physical", "accesses", "density")
	for _, m := range modes {
		path := filepath.Join(dir, "step."+m.format.String()+fmt.Sprint(m.window))
		if err := core.WriteSceneFile(path, m.format, scene); err != nil {
			return err
		}
		res, err := core.RunReal(core.RealConfig{
			Scene: scene, Procs: procs, Format: m.format, Path: path,
			Hints: mpiio.Hints{CBBufferSize: m.window, CBNodes: min(procs, 4)},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %10s %12s %10d %8.3f\n", m.name,
			stats.Seconds(res.Times.IO), stats.Bytes(res.IO.PhysicalBytes),
			res.IO.Accesses, res.IO.Density())
	}

	if model {
		fmt.Println()
		_, report, err := bench.Fig10(machine.NewBGP())
		if err != nil {
			return err
		}
		fmt.Print(report)
	}
	return nil
}
