// Command renderimg renders the synthetic core-collapse supernova
// (our stand-in for the paper's Fig 1 dataset) to a PPM image with the
// serial reference renderer.
//
//	renderimg -n 128 -img 512 -var velocity_x -o supernova.ppm
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpvr/internal/core"
	"bgpvr/internal/render"
	"bgpvr/internal/volume"
)

func main() {
	n := flag.Int("n", 128, "volume grid size n^3")
	imgSize := flag.Int("img", 512, "image size (square)")
	varName := flag.String("var", "velocity_x", "variable: pressure, density, velocity_{x,y,z}")
	persp := flag.Bool("persp", true, "perspective camera")
	shaded := flag.Bool("shaded", true, "gradient (Lambertian) shading")
	timeArg := flag.Float64("time", 1.1, "SASI phase (time step)")
	out := flag.String("o", "supernova.ppm", "output PPM path")
	flag.Parse()

	v, ok := varByName(*varName)
	if !ok {
		fmt.Fprintf(os.Stderr, "renderimg: unknown variable %q\n", *varName)
		os.Exit(1)
	}
	scene := core.DefaultScene(*n, *imgSize)
	scene.Variable = v
	scene.Perspective = *persp
	scene.Shaded = *shaded
	scene.Time = *timeArg
	scene.Step = 0.5

	fmt.Printf("generating %d^3 %s field...\n", *n, v.Name())
	field := scene.Supernova().GenerateFull(v, scene.Dims)
	fmt.Printf("ray casting %d^2 image...\n", *imgSize)
	cfg := scene.RenderConfig()
	cfg.EarlyTerminationAlpha = 0.999
	cfg.SkipEmptySpace = true
	img, samples := render.RenderFull(field, scene.Camera(), scene.Transfer(), cfg)
	if err := img.WritePPM(*out, 0.02); err != nil {
		fmt.Fprintln(os.Stderr, "renderimg:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d samples)\n", *out, samples)
}

func varByName(name string) (volume.Var, bool) {
	for v := volume.Var(0); v < volume.NumVars; v++ {
		if v.Name() == name {
			return v, true
		}
	}
	return 0, false
}
