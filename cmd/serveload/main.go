// Command serveload load-tests the bgpvr render service. It drives
// POST /render at one or more steady concurrency levels (a sweep) or
// at a fixed concurrency for a wall-clock duration (a soak), measures
// client-observed latency into the same log-bucketed histogram the
// service uses for /status (obs.Histogram.Quantile), and prints one
// table row per level: requests, 2xx/429/503 splits, throughput, and
// p50/p90/p99. With -perf-report it writes a schema-versioned report
// carrying a service section that perfdiff -only service gates; with
// -run-record it appends the same report to a runstore registry so
// perfhistory tracks p99 and throughput across runs.
//
// Usage:
//
//	serveload -addr 127.0.0.1:8080 -sweep 1,2,4,8 -requests 40
//	serveload -soak 30s -concurrency 4             (in-process server)
//
// With no -addr the harness starts an in-process server on a loopback
// port — the hermetic mode CI uses, and the quickest way to profile
// the service without deploying it.
//
// Exit status: 0 on success, 1 when -min-2xx or -p99-budget is set
// and violated, or on setup/usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bgpvr/internal/obs"
	"bgpvr/internal/runstore"
	"bgpvr/internal/serve"
	"bgpvr/internal/telemetry"
)

// point accumulates one concurrency level's outcomes.
type point struct {
	ok, rejected, deadline, errs atomic.Int64
	hist                         *obs.Histogram

	mu        sync.Mutex
	slowest   time.Duration
	slowestID string   // server-assigned X-Request-ID of the slowest request
	failIDs   []string // request IDs of non-2xx responses, capped
}

// maxFailIDs caps the failed-request IDs kept per level; enough to
// pull the traces, bounded so a full-rejection level stays readable.
const maxFailIDs = 8

// observe folds one finished request into the level's ID bookkeeping.
// The server echoes its request ID in the X-Request-ID response
// header, so a recorded ID is directly queryable at /traces/{id}.
func (p *point) observe(d time.Duration, id string, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > p.slowest {
		p.slowest, p.slowestID = d, id
	}
	if failed && id != "" && len(p.failIDs) < maxFailIDs {
		p.failIDs = append(p.failIDs, id)
	}
}

// run drives total requests (or, when total<0, keeps going until ctx
// expires) at the given steady concurrency against url, posting body.
func (p *point) run(ctx context.Context, client *http.Client, url string, body []byte, concurrency int, total int64) time.Duration {
	var issued atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if total >= 0 && issued.Add(1) > total {
					return
				}
				t0 := time.Now()
				code, id, err := post(ctx, client, url, body)
				d := time.Since(t0)
				p.hist.Observe(d.Seconds())
				failed := true
				switch {
				case err != nil:
					if ctx.Err() != nil {
						return // soak cut the request off mid-flight
					}
					p.errs.Add(1)
				case code >= 200 && code < 300:
					p.ok.Add(1)
					failed = false
				case code == http.StatusTooManyRequests:
					p.rejected.Add(1)
				case code == http.StatusServiceUnavailable:
					p.deadline.Add(1)
				default:
					p.errs.Add(1)
				}
				p.observe(d, id, failed)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// post issues one render request and returns the status code plus the
// server-assigned X-Request-ID (empty against a non-bgpvr target).
func post(ctx context.Context, client *http.Client, url string, body []byte) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Request-ID"), nil
}

// cacheCounters reads the service's field-cache counters from
// /status; zeros (and false) when the endpoint is unreachable, so the
// harness degrades gracefully against a non-bgpvr target.
func cacheCounters(client *http.Client, base string) (hits, misses int64, ok bool) {
	resp, err := client.Get(base + "/status")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return 0, 0, false
	}
	defer resp.Body.Close()
	var st serve.StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, false
	}
	return st.Cache.FieldHits, st.Cache.FieldMisses, true
}

func main() {
	addr := flag.String("addr", "", "service address host:port (empty: start an in-process server)")
	sweepArg := flag.String("sweep", "1,2,4", "comma-separated concurrency levels to sweep")
	requests := flag.Int("requests", 20, "requests per sweep level")
	soak := flag.Duration("soak", 0, "soak duration; nonzero switches from sweep to a single soak point")
	concurrency := flag.Int("concurrency", 4, "soak concurrency")
	mode := flag.String("mode", "real", "render mode: real or model")
	n := flag.Int("n", 32, "volume edge (n^3 voxels)")
	img := flag.Int("img", 0, "image edge (0: 2n)")
	procs := flag.Int("procs", 4, "rank count")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-request deadline (0: server default)")
	skipEmpty := flag.Bool("skip-empty", false, "request empty-space skipping (exercises the mask cache)")
	p99Budget := flag.Duration("p99-budget", 0, "fail (exit 1) when any level's p99 exceeds this")
	min2xx := flag.Int64("min-2xx", 0, "fail (exit 1) when fewer than this many requests succeed overall")
	perfReport := flag.String("perf-report", "", "write the load-test perf report (JSON) here")
	runRecord := flag.String("run-record", "", "append the report to this runstore registry (JSONL)")
	timestamp := flag.String("timestamp", "", "RFC3339 timestamp for the run record (default: now)")
	serveConc := flag.Int("serve-concurrency", 0, "in-process server: max concurrent frames")
	serveQueue := flag.Int("serve-queue", 0, "in-process server: queue depth")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}

	var levels []int
	if *soak > 0 {
		levels = []int{*concurrency}
	} else {
		for _, part := range strings.Split(*sweepArg, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || c < 1 {
				fail(fmt.Errorf("bad -sweep level %q", part))
			}
			levels = append(levels, c)
		}
	}

	target := *addr
	if target == "" {
		// Hermetic mode: the server lives in this process on a loopback
		// port. Client-observed latency still crosses a real TCP socket.
		s := serve.New(serve.Config{
			MaxConcurrent: *serveConc,
			QueueDepth:    *serveQueue,
			// The harness table is the output; drop the server's
			// per-request access lines.
			Log: slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError})),
		})
		if err := s.Start("127.0.0.1:0"); err != nil {
			fail(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		}()
		target = s.Addr()
	}
	base := "http://" + target
	body, err := json.Marshal(serve.RenderRequest{
		Mode: *mode, N: *n, Img: *img, Procs: *procs,
		DeadlineMS: *deadlineMS, SkipEmptySpace: *skipEmpty,
	})
	if err != nil {
		fail(err)
	}
	client := &http.Client{}

	kind := "sweep"
	if *soak > 0 {
		kind = "soak"
	}
	statTarget := *addr
	if statTarget == "" {
		statTarget = "in-process"
	}
	stat := &telemetry.ServiceStat{Mode: kind, Target: statTarget}
	reg := obs.NewRegistry()
	// The same log-2 buckets the service's /status quantiles use, so
	// client- and server-side percentiles are directly comparable.
	buckets := obs.ExpBuckets(0.001, 2, 15)

	fmt.Printf("serveload: %s against %s (%s mode, n=%d, procs=%d)\n", kind, base, *mode, *n, *procs)
	fmt.Printf("%5s %9s %7s %7s %7s %7s %9s %9s %9s %9s %9s\n",
		"conc", "requests", "2xx", "429", "503", "err", "rps", "mean_ms", "p50_ms", "p90_ms", "p99_ms")
	var total2xx int64
	var budgetViolations []string
	var allFailIDs []string
	for i, c := range levels {
		p := &point{hist: reg.NewHistogram(fmt.Sprintf("serveload_latency_%d", i),
			"Client-observed request latency.", buckets)}
		h0, m0, haveCache := cacheCounters(client, base)
		ctx := context.Background()
		totalReqs := int64(*requests)
		if *soak > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *soak)
			totalReqs = -1
			defer cancel()
		}
		elapsed := p.run(ctx, client, base+"/render", body, c, totalReqs)

		count := p.hist.Count()
		if *soak > 0 {
			// Latency observations include the requests the soak cut off;
			// only completed ones count toward the outcome columns.
			count = p.ok.Load() + p.rejected.Load() + p.deadline.Load() + p.errs.Load()
		}
		sp := telemetry.ServicePoint{
			Concurrency: c,
			Requests:    count,
			OK:          p.ok.Load(),
			Rejected:    p.rejected.Load(),
			Deadline:    p.deadline.Load(),
			Errors:      p.errs.Load(),
			DurationSec: elapsed.Seconds(),
		}
		if sp.DurationSec > 0 {
			sp.RPS = float64(sp.OK) / sp.DurationSec
		}
		if nObs := p.hist.Count(); nObs > 0 {
			sp.MeanMs = p.hist.Sum() / float64(nObs) * 1e3
			sp.P50Ms = p.hist.Quantile(0.5) * 1e3
			sp.P90Ms = p.hist.Quantile(0.9) * 1e3
			sp.P99Ms = p.hist.Quantile(0.99) * 1e3
		}
		if h1, m1, ok := cacheCounters(client, base); ok && haveCache {
			sp.CacheHits, sp.CacheMisses = h1-h0, m1-m0
		}
		sp.SlowestMs = p.slowest.Seconds() * 1e3
		sp.SlowestID = p.slowestID
		sp.FailIDs = append([]string(nil), p.failIDs...)
		stat.Points = append(stat.Points, sp)
		total2xx += sp.OK
		allFailIDs = append(allFailIDs, sp.FailIDs...)
		fmt.Printf("%5d %9d %7d %7d %7d %7d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			c, sp.Requests, sp.OK, sp.Rejected, sp.Deadline, sp.Errors,
			sp.RPS, sp.MeanMs, sp.P50Ms, sp.P90Ms, sp.P99Ms)
		// The server tail-samples slow and failed requests, so these IDs
		// are the handles into its /traces/{id} span trees.
		if sp.SlowestID != "" {
			fmt.Printf("      slowest: %.2fms id=%s (GET %s/traces/%s)\n",
				sp.SlowestMs, sp.SlowestID, base, sp.SlowestID)
		}
		if len(sp.FailIDs) > 0 {
			fmt.Printf("      failed ids (first %d): %s\n", maxFailIDs, strings.Join(sp.FailIDs, " "))
		}
		if *p99Budget > 0 && sp.P99Ms > float64(p99Budget.Milliseconds()) {
			v := fmt.Sprintf("c=%d p99 %.2fms > budget %v", c, sp.P99Ms, *p99Budget)
			if sp.SlowestID != "" {
				v += fmt.Sprintf(" (slowest request %s: %.2fms)", sp.SlowestID, sp.SlowestMs)
			}
			budgetViolations = append(budgetViolations, v)
		}
	}

	rep := telemetry.NewReport("serveload")
	rep.Config = map[string]string{
		"kind":   kind,
		"target": statTarget,
		"mode":   *mode,
		"n":      strconv.Itoa(*n),
		"procs":  strconv.Itoa(*procs),
		"sweep":  *sweepArg,
	}
	rep.Service = stat
	if *perfReport != "" {
		if err := rep.WriteFile(*perfReport); err != nil {
			fail(err)
		}
		fmt.Printf("perf report: %s\n", *perfReport)
	}
	if *runRecord != "" {
		ts := *timestamp
		if ts == "" {
			ts = time.Now().UTC().Format(time.RFC3339)
		}
		if err := runstore.Append(*runRecord, runstore.NewRecord(rep, runstore.GitRev(), ts)); err != nil {
			fail(err)
		}
		fmt.Printf("run record: %s\n", *runRecord)
	}

	failed := false
	if *min2xx > 0 && total2xx < *min2xx {
		msg := fmt.Sprintf("%d requests succeeded, need %d", total2xx, *min2xx)
		if len(allFailIDs) > 0 {
			msg += " (failed request ids: " + strings.Join(allFailIDs, " ") + ")"
		}
		fmt.Fprintf(os.Stderr, "serveload: FAIL: %s\n", msg)
		failed = true
	}
	for _, v := range budgetViolations {
		fmt.Fprintf(os.Stderr, "serveload: FAIL: %s\n", v)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
