package bgpvr

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out and micro-benchmarks of the hot
// substrate paths. The figure benches run the machine-model experiment
// and report its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every exhibit's numbers. Use -benchtime=1x for a single
// regeneration pass.

import (
	"fmt"
	"path/filepath"
	"testing"

	"bgpvr/internal/bench"
	"bgpvr/internal/comm"
	"bgpvr/internal/compose"
	"bgpvr/internal/core"
	"bgpvr/internal/grid"
	"bgpvr/internal/img"
	"bgpvr/internal/machine"
	"bgpvr/internal/mpiio"
	"bgpvr/internal/netcdf"
	"bgpvr/internal/render"
	"bgpvr/internal/torus"
	"bgpvr/internal/vfile"
	"bgpvr/internal/volume"
)

var mach = machine.NewBGP()

// --- Paper exhibits -------------------------------------------------

// BenchmarkFig3 regenerates the total/component-time sweep (Fig 3) and
// reports the best all-inclusive frame time (paper: 5.9 s at 16K cores).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := bench.Fig3(mach)
		if err != nil {
			b.Fatal(err)
		}
		best := 1e18
		for _, pt := range pts {
			if pt.Total < best {
				best = pt.Total
			}
		}
		b.ReportMetric(best, "best-frame-s")
	}
}

// BenchmarkFig4 regenerates the compositing-bandwidth study and reports
// the original scheme's bandwidth at 32K cores.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := bench.Fig4(mach)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.OriginalBW/1e6, "orig-MB/s@32K")
		b.ReportMetric(last.ImprovedBW/1e6, "impr-MB/s@32K")
	}
}

// BenchmarkFig5 regenerates the three-size frame-time summary and
// reports the 4480^3 time at 32K (paper: 220.8 s).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := bench.Fig5(mach)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Grid == 4480 && pt.Procs == 32768 {
				b.ReportMetric(pt.Total, "4480@32K-s")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table II and reports the 2240^3 read
// bandwidth at 32K cores (paper: 1.26 GB/s).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Table2(mach)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Grid == 2240 && r.Procs == 32768 {
				b.ReportMetric(r.ReadBW/1e9, "read-GB/s")
				b.ReportMetric(r.PctIO, "pct-io")
			}
		}
	}
}

// BenchmarkFig6 regenerates the stage-share distribution and reports the
// I/O share at 16K cores.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := bench.Fig6(mach)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Procs == 16384 {
				b.ReportMetric(pt.PctIO, "pct-io@16K")
			}
		}
	}
}

// BenchmarkFig7 regenerates the I/O-mode bandwidth comparison and
// reports the untuned-netCDF slowdown at low core counts (paper: 4-5x).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := bench.Fig7(mach)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Procs == 256 {
				b.ReportMetric(pt.RawBW/pt.OrigBW, "untuned-slowdown@256")
			}
		}
	}
}

// BenchmarkFig8 regenerates the netCDF layout dump.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(1120); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the access-pattern maps and reports the
// untuned physical-read volume (paper: ~most of the 28 GB file).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		modes, _, err := bench.Fig9(mach)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(modes[0].Stats.PhysicalBytes)/1e9, "untuned-GB")
	}
}

// BenchmarkFig10 regenerates the five-mode synthetic I/O benchmark and
// reports the fastest/slowest spread.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		modes, _, err := bench.Fig10(mach)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(modes[len(modes)-1].Time/modes[0].Time, "slowest/fastest")
	}
}

// --- Ablations (DESIGN.md) -------------------------------------------

// BenchmarkAblationCompositors sweeps m for n=16K renderers and reports
// the gain of the paper's choice (m=2048) over m=n.
func BenchmarkAblationCompositors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		byM, _, err := bench.AblationCompositors(mach, 16384)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(byM[16384]/byM[2048], "gain-m2048")
	}
}

// BenchmarkAblationCompositeAlgo compares direct-send and binary swap.
func BenchmarkAblationCompositeAlgo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationCompositeAlgo(mach); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCBBuffer sweeps the collective buffer size.
func BenchmarkAblationCBBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationCBBuffer(mach); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationContention isolates the network-model terms.
func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationContention(mach); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAggregators sweeps the I/O aggregator count.
func BenchmarkAblationAggregators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationAggregators(mach); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTwoPhase compares collective, sieved-independent and
// exact-independent reads of one record variable on a real file.
func BenchmarkAblationTwoPhase(b *testing.B) {
	scene := core.DefaultScene(48, 64)
	path := filepath.Join(b.TempDir(), "step.nc")
	if err := core.WriteSceneFile(path, core.FormatNetCDF, scene); err != nil {
		b.Fatal(err)
	}
	union, err := core.UnionRuns(core.FormatNetCDF, scene)
	if err != nil {
		b.Fatal(err)
	}
	f, err := vfile.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.Run("collective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.RunReal(core.RealConfig{
				Scene: scene, Procs: 4, Format: core.FormatNetCDF, Path: path,
				Hints: mpiio.Hints{CBBufferSize: 48 * 48 * 4, CBNodes: 2}})
			if err != nil {
				b.Fatal(err)
			}
			_ = res
		}
	})
	b.Run("independent-sieved", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mpiio.IndependentRead(f, union, 1<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("independent-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mpiio.IndependentRead(f, union, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGhost measures the I/O cost of the ghost-in-read
// strategy: bytes read with and without the halo layer.
func BenchmarkAblationGhost(b *testing.B) {
	scene := core.DefaultScene(64, 64)
	d := grid.NewDecomp(scene.Dims, 8)
	for i := 0; i < b.N; i++ {
		var with, without int64
		for r := 0; r < 8; r++ {
			without += grid.TotalBytes(grid.Runs(scene.Dims, d.BlockExtent(r), 4, 0))
			with += grid.TotalBytes(grid.Runs(scene.Dims, d.GhostExtent(r, 1), 4, 0))
		}
		b.ReportMetric(float64(with)/float64(without), "ghost-overhead")
	}
}

// --- Substrate micro-benchmarks --------------------------------------

// BenchmarkRenderBlock measures the ray-casting hot loop; it also
// calibrates the real-mode seconds-per-sample constant. The workers
// sub-benchmarks cast one 256^3 block with the internal/par scanline
// pool and should scale near-linearly 1 -> 4 workers (given cores).
func BenchmarkRenderBlock(b *testing.B) {
	scene := core.DefaultScene(256, 256)
	sn := scene.Supernova()
	d := grid.NewDecomp(scene.Dims, 1)
	fld := sn.Generate(scene.Variable, scene.Dims, d.GhostExtent(0, 1))
	cam := scene.Camera()
	tf := scene.Transfer()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := scene.RenderConfig()
			cfg.Workers = w
			var samples int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub := render.RenderBlock(fld, d.BlockExtent(0), cam, tf, cfg)
				samples = sub.Samples
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(samples)/float64(b.N), "ns/sample")
		})
	}
}

// BenchmarkSupernovaEval measures synthetic-data generation.
func BenchmarkSupernovaEval(b *testing.B) {
	sn := volume.Supernova{Seed: 1, Time: 1}
	dims := grid.Cube(1120)
	var s float32
	for i := 0; i < b.N; i++ {
		s += sn.Eval(volume.VarVelocityX, dims, i%1120, (i*7)%1120, (i*13)%1120)
	}
	_ = s
}

// BenchmarkTorusPhase measures the network model on a 32K-rank
// direct-send schedule — the heaviest model-mode computation.
func BenchmarkTorusPhase(b *testing.B) {
	scene, _ := core.PaperScene(1120)
	d := grid.NewDecomp(scene.Dims, 32768)
	cam := scene.Camera()
	rects := make([]img.Rect, d.NumBlocks())
	for r := range rects {
		rects[r] = render.ProjectedRect(cam, d.BlockExtent(r))
	}
	msgs := compose.DirectSendSchedule(rects, scene.ImageW, scene.ImageH, 32768, compose.PixelBytes)
	top := mach.TorusFor(32768)
	nm := make([]torus.Message, len(msgs))
	for i, mm := range msgs {
		nm[i] = torus.Message{Src: mach.NodeOf(mm.Src), Dst: mach.NodeOf(mm.Dst), Bytes: mm.Bytes}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		torus.Phase(top, mach.Torus, nm, true)
	}
	b.ReportMetric(float64(len(nm)), "messages")
}

// BenchmarkNetCDFHeader measures header encode/decode round trips.
func BenchmarkNetCDFHeader(b *testing.B) {
	names := []string{"pressure", "density", "velocity_x", "velocity_y", "velocity_z"}
	f, err := netcdf.NewVolumeFile(netcdf.V2, grid.Cube(1120), names, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := netcdf.DecodeHeader(netcdf.EncodeHeader(f)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectiveRead measures the two-phase executor end to end.
func BenchmarkCollectiveRead(b *testing.B) {
	data := make([]byte, 1<<22)
	for i := range data {
		data[i] = byte(i)
	}
	file := &vfile.MemFile{Data: data}
	const p = 8
	reqs := make([][]grid.Run, p)
	for r := range reqs {
		for off := int64(r * 100); off < int64(len(data))-2048; off += 8192 {
			reqs[r] = append(reqs[r], grid.Run{Offset: off, Length: 1024})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := comm.NewWorld(p)
		err := w.Run(func(c *comm.Comm) error {
			_, err := mpiio.CollectiveRead(c, file, reqs[c.Rank()], mpiio.Hints{CBBufferSize: 1 << 16, CBNodes: 4})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndRealFrame measures a complete small real-mode frame.
func BenchmarkEndToEndRealFrame(b *testing.B) {
	scene := core.DefaultScene(48, 128)
	for i := 0; i < b.N; i++ {
		if _, err := core.RunReal(core.RealConfig{Scene: scene, Procs: 8, Format: core.FormatGenerate}); err != nil {
			b.Fatal(err)
		}
	}
}
