module bgpvr

go 1.22
